// Descriptive statistics used by the analysis layer and the benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace excovery::stats {

double mean(const std::vector<double>& values);
/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double stddev(const std::vector<double>& values);
double min_of(const std::vector<double>& values);
double max_of(const std::vector<double>& values);
/// Linear-interpolated percentile, p clamped to [0, 100].  NaN values are
/// ignored; 0 for an empty (or all-NaN) input; NaN p yields NaN.
double percentile(std::vector<double> values, double p);
inline double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

/// Wilson score interval for a binomial proportion (successes/trials) at
/// ~95% confidence (z = 1.96).  The interval of choice for responsiveness
/// estimates, which sit near 1.0 where the normal approximation fails.
struct Proportion {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  std::size_t successes = 0;
  std::size_t trials = 0;
};
Proportion wilson(std::size_t successes, std::size_t trials);

/// Equal-width histogram over [lo, hi).  Reversed bounds are swapped; a
/// width-zero range keeps value == lo in bin 0.  NaN samples count into a
/// separate bucket (they belong to no bin), out-of-range samples into
/// underflow/overflow; all are included in count().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::size_t count() const noexcept { return total_; }
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t nan_count() const noexcept { return nan_; }
  double bin_lower(std::size_t bin) const;

  /// "0.00-0.10 | ####### 42" style rendering.
  std::string format(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
};

}  // namespace excovery::stats
