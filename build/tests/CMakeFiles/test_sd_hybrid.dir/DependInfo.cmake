
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sd_hybrid_test.cpp" "tests/CMakeFiles/test_sd_hybrid.dir/sd_hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/test_sd_hybrid.dir/sd_hybrid_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/excovery_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/excovery_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/excovery_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sd/CMakeFiles/excovery_sd.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/excovery_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/excovery_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/excovery_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/excovery_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/excovery_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/excovery_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
