#include "storage/conditioning.hpp"

namespace excovery::storage {

double to_common_time(std::int64_t local_time_ns, std::int64_t offset_ns) {
  return static_cast<double>(local_time_ns - offset_ns) / 1e9;
}

Result<ExperimentPackage> condition(const Level2Store& level2,
                                    const std::string& description_xml,
                                    const ConditioningOptions& options) {
  ExperimentPackage package;
  EXC_TRY(package.set_experiment_info(description_xml, options.experiment_name,
                                      options.comment));

  auto include_run = [&](std::int64_t run_id) {
    return !options.completed_runs_only || level2.run_complete(run_id);
  };

  // RunInfos from the master's sync measurements.
  for (const SyncMeasurement& sync : level2.syncs()) {
    if (!include_run(sync.run_id)) continue;
    RunInfoRow info;
    info.run_id = sync.run_id;
    info.node_id = sync.node;
    info.start_time = static_cast<double>(sync.run_start_ns) / 1e9;
    info.time_diff = static_cast<double>(sync.offset_ns) / 1e9;
    EXC_TRY(package.add_run_info(info));
  }

  std::int64_t measurement_id = 1;
  for (const std::string& node_name : level2.node_names()) {
    const NodeStore* store = level2.find_node(node_name);
    // Logs.
    if (!store->log().empty()) {
      EXC_TRY(package.add_log(node_name, store->log()));
    }
    // Events: split into single entries on the common time base.
    for (const RawEvent& event : store->events()) {
      if (!include_run(event.run_id)) continue;
      EventRow row;
      row.run_id = event.run_id;
      row.node_id = node_name;
      row.common_time = to_common_time(
          event.local_time_ns, level2.offset_ns(event.run_id, node_name));
      row.event_type = event.type;
      row.parameter = event.parameter.to_text();
      EXC_TRY(package.add_event(row));
    }
    // Packets.
    for (const RawPacket& packet : store->packets()) {
      if (!include_run(packet.run_id)) continue;
      PacketRow row;
      row.run_id = packet.run_id;
      row.node_id = node_name;
      row.common_time = to_common_time(
          packet.local_time_ns, level2.offset_ns(packet.run_id, node_name));
      row.src_node_id = packet.src_node;
      row.data = packet.data;
      EXC_TRY(package.add_packet(row));
    }
    // Named blobs: experiment-scoped go to ExperimentMeasurements,
    // run-scoped (and plugin data) to ExtraRunMeasurements.
    for (const NamedBlob& blob : store->blobs()) {
      if (blob.run_id < 0) {
        EXC_TRY(package.add_experiment_measurement(measurement_id++, node_name,
                                                   blob.name, blob.content));
      } else if (include_run(blob.run_id)) {
        EXC_TRY(package.add_extra_run_measurement(blob.run_id, node_name,
                                                  blob.name, blob.content));
      }
    }
    for (const NamedBlob& blob : store->plugin_data()) {
      if (blob.run_id < 0) {
        EXC_TRY(package.add_experiment_measurement(measurement_id++, node_name,
                                                   blob.name, blob.content));
      } else if (include_run(blob.run_id)) {
        EXC_TRY(package.add_extra_run_measurement(blob.run_id, node_name,
                                                  blob.name, blob.content));
      }
    }
  }
  return package;
}

}  // namespace excovery::storage
