# Empty compiler generated dependencies file for test_core_interpreter.
# This may be replaced when dependencies are built.
