// Level-2 (intermediate) storage: raw, unconditioned measurement data.
//
// §IV-B5: "Each participating node has its own temporary storage for
// recorded data, organized into data belonging to single runs and data
// valid for the complete experiment.  Time synchronization measurements are
// stored on the experiment master.  Plugins have a separate storage
// location on the node where the custom measurements are done."
//
// Timestamps here are *local* node clock readings in integer nanoseconds;
// conditioning (conditioning.hpp) maps them onto the common time base.
// The store persists as a file-system hierarchy (one binary store per node
// plus one for the master) so that collection and resume-after-abort can
// pick it up, mirroring the prototype's "special hierarchy on a file
// system".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"

namespace excovery::storage {

/// A raw (unconditioned) event record on a node.
struct RawEvent {
  std::int64_t run_id = 0;
  std::int64_t local_time_ns = 0;
  std::string type;
  Value parameter;
};

/// A raw captured packet on a node.
struct RawPacket {
  std::int64_t run_id = 0;
  std::int64_t local_time_ns = 0;
  std::string src_node;
  Bytes data;
};

/// A named blob, run-scoped or experiment-scoped.
struct NamedBlob {
  std::int64_t run_id = -1;  ///< -1 = experiment-scoped
  std::string name;
  std::string content;
};

/// Per-node temporary storage.
class NodeStore {
 public:
  void record_event(RawEvent event) { events_.push_back(std::move(event)); }
  void record_packet(RawPacket packet) {
    packets_.push_back(std::move(packet));
  }
  void add_run_blob(std::int64_t run_id, std::string name,
                    std::string content) {
    blobs_.push_back({run_id, std::move(name), std::move(content)});
  }
  void add_experiment_blob(std::string name, std::string content) {
    blobs_.push_back({-1, std::move(name), std::move(content)});
  }
  /// Plugin measurements live in their own location (§IV-B5).
  void add_plugin_measurement(std::int64_t run_id, std::string plugin,
                              std::string name, std::string content) {
    plugin_data_.push_back(
        {run_id, plugin + "/" + std::move(name), std::move(content)});
  }
  void append_log(const std::string& text) { log_ += text; }

  const std::vector<RawEvent>& events() const noexcept { return events_; }
  const std::vector<RawPacket>& packets() const noexcept { return packets_; }
  const std::vector<NamedBlob>& blobs() const noexcept { return blobs_; }
  const std::vector<NamedBlob>& plugin_data() const noexcept {
    return plugin_data_;
  }
  const std::string& log() const noexcept { return log_; }

  /// Drop data belonging to one run (used when an aborted run is re-done).
  void discard_run(std::int64_t run_id);

  void clear();

  Bytes serialize() const;
  static Result<NodeStore> deserialize(const Bytes& data);

 private:
  std::vector<RawEvent> events_;
  std::vector<RawPacket> packets_;
  std::vector<NamedBlob> blobs_;
  std::vector<NamedBlob> plugin_data_;
  std::string log_;
};

/// Time-sync estimate for one (run, node), held by the master.
struct SyncMeasurement {
  std::int64_t run_id = 0;
  std::string node;
  std::int64_t offset_ns = 0;      ///< estimated local - reference offset
  std::int64_t run_start_ns = 0;   ///< reference-time start of the run
};

/// The complete level-2 store: per-node stores plus master-side data.
class Level2Store {
 public:
  NodeStore& node(const std::string& name) { return nodes_[name]; }
  const NodeStore* find_node(const std::string& name) const;
  std::vector<std::string> node_names() const;

  void add_sync(SyncMeasurement sync) { syncs_.push_back(std::move(sync)); }
  const std::vector<SyncMeasurement>& syncs() const noexcept { return syncs_; }
  /// Offset estimate for (run, node); 0 if not measured.
  std::int64_t offset_ns(std::int64_t run_id, const std::string& node) const;

  /// Runs that completed (collection only conditions complete runs; an
  /// aborted run is resumed, §VII).
  void mark_run_complete(std::int64_t run_id) {
    completed_runs_.push_back(run_id);
  }
  const std::vector<std::int64_t>& completed_runs() const noexcept {
    return completed_runs_;
  }
  bool run_complete(std::int64_t run_id) const;

  /// Drop all traces of a run on every node (resume of an aborted run).
  void discard_run(std::int64_t run_id);

  void clear();

  // ---- file-system hierarchy persistence -------------------------------
  /// Writes <dir>/nodes/<name>.store and <dir>/master.store.
  Status write_to_directory(const std::string& directory) const;
  static Result<Level2Store> load_from_directory(const std::string& directory);

 private:
  std::map<std::string, NodeStore> nodes_;
  std::vector<SyncMeasurement> syncs_;
  std::vector<std::int64_t> completed_runs_;
};

}  // namespace excovery::storage
