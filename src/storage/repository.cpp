#include "storage/repository.hpp"

#include <filesystem>
#include <fstream>

namespace excovery::storage {

namespace fs = std::filesystem;

Result<Repository> Repository::open(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return err_io("cannot create repository directory '" + directory +
                  "': " + ec.message());
  }
  Repository repo(directory);
  // Rebuild the index from the files actually present (self-healing if the
  // index file is stale or missing).
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& path : entries) {
    if (path.extension() == ".excovery") {
      repo.index_.emplace(path.stem().string(), path.filename().string());
    }
  }
  return repo;
}

std::string Repository::path_for(const std::string& experiment_id) const {
  return (fs::path(directory_) / (experiment_id + ".excovery")).string();
}

Status Repository::save_index() const {
  std::ofstream out(fs::path(directory_) / "index.txt", std::ios::trunc);
  if (!out) return err_io("cannot write repository index");
  for (const auto& [id, file] : index_) out << id << "\t" << file << "\n";
  return {};
}

Status Repository::store(const std::string& experiment_id,
                         const ExperimentPackage& package) {
  if (experiment_id.empty() ||
      experiment_id.find('/') != std::string::npos ||
      experiment_id.find('\\') != std::string::npos) {
    return err_invalid("experiment id must be a non-empty plain name");
  }
  if (contains(experiment_id)) {
    return err_state("experiment '" + experiment_id +
                     "' already in repository");
  }
  EXC_TRY(package.save(path_for(experiment_id)));
  index_.emplace(experiment_id, experiment_id + ".excovery");
  return save_index();
}

Result<ExperimentPackage> Repository::fetch(
    const std::string& experiment_id) const {
  if (!contains(experiment_id)) {
    return err_not_found("no experiment '" + experiment_id +
                         "' in repository");
  }
  return ExperimentPackage::load(path_for(experiment_id));
}

bool Repository::contains(const std::string& experiment_id) const {
  return index_.find(experiment_id) != index_.end();
}

std::vector<std::string> Repository::experiment_ids() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [id, file] : index_) out.push_back(id);
  return out;
}

Result<std::vector<Repository::CrossEvent>> Repository::events_of_type(
    const std::string& event_type) const {
  std::vector<CrossEvent> out;
  for (const auto& [id, file] : index_) {
    EXC_ASSIGN_OR_RETURN(ExperimentPackage package, fetch(id));
    EXC_ASSIGN_OR_RETURN(std::vector<EventRow> events, package.all_events());
    for (EventRow& event : events) {
      if (event.event_type == event_type) {
        out.push_back(CrossEvent{id, std::move(event)});
      }
    }
  }
  return out;
}

Result<std::vector<Repository::Summary>> Repository::summaries() const {
  std::vector<Summary> out;
  for (const auto& [id, file] : index_) {
    EXC_ASSIGN_OR_RETURN(ExperimentPackage package, fetch(id));
    Summary summary;
    summary.experiment_id = id;
    summary.name = package.experiment_name().value_or("");
    summary.runs = package.run_ids().size();
    summary.events = package.event_count();
    summary.packets = package.packet_count();
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace excovery::storage
