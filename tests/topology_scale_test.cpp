// Mega-scale topology smoke test (DESIGN.md §13): a 10k-node random
// geometric world must generate, route and flood inside a wall-clock and
// memory budget.  This is the tier-1 guard against regressions back toward
// O(V²) behaviour — the former eager all-pairs routing table alone would
// need ~600 MB and tens of seconds here; the former pairwise generator and
// per-packet linear address scans would blow the time budget on their own.
#include <gtest/gtest.h>

#include <chrono>

#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace excovery::net {
namespace {

constexpr std::size_t kNodes = 10'000;
constexpr double kRadius = 0.03;  // mean degree ~ pi * r^2 * V ~ 28
constexpr std::uint64_t kSeed = 20260808;

// Generous for slow CI machines, but far below what any O(V²) regression
// costs at this scale.
constexpr double kWallBudgetSeconds = 60.0;

LinkModel fast_link() {
  LinkModel model = LinkModel::ideal();
  model.jitter_frac = 0.0;
  return model;
}

TEST(TopologyScale, TenThousandNodeWorldWithinBudget) {
  const auto start = std::chrono::steady_clock::now();

  // Generation (grid-indexed neighbour discovery).
  Result<Topology> topology =
      Topology::random_geometric(kNodes, kRadius, kSeed, fast_link());
  ASSERT_TRUE(topology.ok()) << topology.error().to_string();
  ASSERT_EQ(topology.value().node_count(), kNodes);
  ASSERT_TRUE(topology.value().connected());
  // Sanity: the geometric world is mesh-like, not degenerate.
  EXPECT_GT(topology.value().link_count(), kNodes);

  sim::Scheduler scheduler;
  Network network(scheduler, std::move(topology).value(), /*seed=*/7);
  network.set_capture_enabled(false);

  // Routing warm-up: unicast-style row queries from a spread of sources.
  // Memory must stay O(cached rows), never O(V²).
  int reachable = 0;
  for (NodeId from = 0; from < kNodes; from += 997) {
    if (network.hop_count(from, kNodes - 1 - from) >= 0) ++reachable;
  }
  EXPECT_GT(reachable, 0);

  // One full multicast flood: every node joined, every node delivered once.
  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < kNodes; ++n) {
    network.join_group(n, group);
    network.bind(n, kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  Packet packet;
  packet.dst = group;
  packet.dst_port = kSdPort;
  packet.ttl = 255;
  packet.payload.assign(256, 0x5A);
  ASSERT_TRUE(network.send(0, std::move(packet)).ok());
  scheduler.run();
  EXPECT_EQ(delivered, kNodes);

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, kWallBudgetSeconds)
      << "10k-node world exceeded the scale budget";
}

TEST(TopologyScale, RoutingMemoryStaysFarBelowAllPairs) {
  Result<Topology> topology =
      Topology::random_geometric(kNodes, kRadius, kSeed, fast_link());
  ASSERT_TRUE(topology.ok());
  RoutingTable routing(topology.value());
  // Warm the cache to its bound with row queries from every source.
  for (NodeId from = 0; from < kNodes; from += 13) {
    (void)routing.hop_count(from, (from * 7919) % kNodes);
  }
  EXPECT_LE(routing.cached_row_count(), routing.row_cache_capacity());
  // The former eager table stored V² next-hop + V² hop entries (6 bytes per
  // pair).  The lazy engine must stay an order of magnitude under that.
  const std::size_t eager_bytes = kNodes * kNodes * 6;
  EXPECT_LT(routing.memory_bytes(), eager_bytes / 10)
      << "routing memory is no longer O(cached rows)";
}

}  // namespace
}  // namespace excovery::net
