// Result-store pipeline benchmarks (google-benchmark).
//
// Measures the level-3 storage paths the analysis pipeline hammers: row
// insertion, per-run point queries and ordered scans over an event-shaped
// table, level-2 -> level-3 conditioning of a multi-node package, and
// (de)serialisation bandwidth of the single-file database image.
//
// The `Seed` variants replicate the previous implementation faithfully —
// a row-oriented Value table with linear predicate scans, and a sequential
// conditioner that re-scans every sync measurement per event — so the JSON
// output carries seed-vs-new numbers side by side.  Results go to
// BENCH_storage.json (override with --benchmark_out=...).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/conditioning.hpp"
#include "storage/database.hpp"
#include "storage/level2.hpp"
#include "storage/package.hpp"
#include "storage/table.hpp"

namespace excovery::storage {
namespace {

constexpr std::int64_t kRuns = 100;

TableSchema events_schema() {
  return {"Events",
          {{"RunID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"CommonTime", ValueType::kDouble, false},
           {"EventType", ValueType::kString, false},
           {"Parameter", ValueType::kString, true}}};
}

Row event_row(std::int64_t i) {
  return {Value{i % kRuns + 1}, Value{"N" + std::to_string(i % 8)},
          Value{static_cast<double>((i * 37) % 10'000) * 1e-3},
          Value{"ev" + std::to_string(i % 12)},
          i % 5 ? Value{"p" + std::to_string(i % 50)} : Value{}};
}

// ---- seed replica: row-oriented table with linear scans --------------------

struct SeedTable {
  std::vector<Row> rows;

  std::vector<const Row*> select_equals(std::size_t column,
                                        const Value& value) const {
    std::vector<const Row*> out;
    for (const Row& row : rows) {
      if (row[column] == value) out.push_back(&row);
    }
    return out;
  }

  std::vector<const Row*> order_by(std::size_t column) const {
    std::vector<const Row*> out;
    out.reserve(rows.size());
    for (const Row& row : rows) out.push_back(&row);
    std::stable_sort(out.begin(), out.end(),
                     [column](const Row* a, const Row* b) {
                       return (*a)[column] < (*b)[column];
                     });
    return out;
  }
};

SeedTable seed_events(std::int64_t rows) {
  SeedTable table;
  table.rows.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) table.rows.push_back(event_row(i));
  return table;
}

Table columnar_events(std::int64_t rows) {
  Table table(events_schema());
  for (std::int64_t i = 0; i < rows; ++i) (void)table.insert(event_row(i));
  return table;
}

/// The previous conditioner: one sequential pass, completed-run membership
/// via linear find, and a full scan over all sync measurements per event
/// (Level2Store::offset_ns) to resolve the clock offset.
Result<ExperimentPackage> condition_seed_replica(
    const Level2Store& level2, const std::string& description_xml) {
  ExperimentPackage package;
  EXC_TRY(package.set_experiment_info(description_xml, "experiment", ""));
  auto include_run = [&](std::int64_t run_id) {
    const std::vector<std::int64_t>& completed = level2.completed_runs();
    return std::find(completed.begin(), completed.end(), run_id) !=
           completed.end();
  };
  for (const SyncMeasurement& sync : level2.syncs()) {
    if (!include_run(sync.run_id)) continue;
    RunInfoRow info;
    info.run_id = sync.run_id;
    info.node_id = sync.node;
    info.start_time = static_cast<double>(sync.run_start_ns) / 1e9;
    info.time_diff = static_cast<double>(sync.offset_ns) / 1e9;
    EXC_TRY(package.add_run_info(info));
  }
  std::int64_t measurement_id = 1;
  for (const std::string& node_name : level2.node_names()) {
    const NodeStore* node = level2.find_node(node_name);
    if (!node->log().empty()) {
      EXC_TRY(package.add_log(node_name, node->log()));
    }
    for (const RawEvent& event : node->events()) {
      if (!include_run(event.run_id)) continue;
      EventRow row;
      row.run_id = event.run_id;
      row.node_id = node_name;
      row.common_time = to_common_time(
          event.local_time_ns, level2.offset_ns(event.run_id, node_name));
      row.event_type = event.type;
      row.parameter = event.parameter.to_text();
      EXC_TRY(package.add_event(row));
    }
    for (const RawPacket& packet : node->packets()) {
      if (!include_run(packet.run_id)) continue;
      PacketRow row;
      row.run_id = packet.run_id;
      row.node_id = node_name;
      row.common_time = to_common_time(
          packet.local_time_ns, level2.offset_ns(packet.run_id, node_name));
      row.src_node_id = packet.src_node;
      row.data = packet.data;
      EXC_TRY(package.add_packet(row));
    }
    auto route_blobs = [&](const std::vector<NamedBlob>& blobs) -> Status {
      for (const NamedBlob& blob : blobs) {
        if (blob.run_id < 0) {
          EXC_TRY(package.add_experiment_measurement(
              measurement_id++, node_name, blob.name, blob.content));
        } else if (include_run(blob.run_id)) {
          EXC_TRY(package.add_extra_run_measurement(blob.run_id, node_name,
                                                    blob.name, blob.content));
        }
      }
      return {};
    };
    EXC_TRY(route_blobs(node->blobs()));
    EXC_TRY(route_blobs(node->plugin_data()));
  }
  return package;
}

/// A multi-node level-2 store shaped like a real campaign: `nodes` nodes,
/// kRuns runs, events + packets + blobs + plugin data per (run, node).
Level2Store busy_level2(int nodes, int events_per_run) {
  Level2Store level2;
  for (int n = 0; n < nodes; ++n) {
    std::string node = "N" + std::to_string(n);
    for (std::int64_t run = 1; run <= kRuns; ++run) {
      for (int e = 0; e < events_per_run; ++e) {
        level2.node(node).record_event(
            {run, run * 1'000'000'000LL + e * 1000 + n,
             "ev" + std::to_string(e % 4), Value{e}});
      }
      for (int p = 0; p < events_per_run / 4; ++p) {
        level2.node(node).record_packet(
            {run, run * 1'000'000'000LL + p * 700, "N0",
             Bytes{static_cast<std::uint8_t>(p),
                   static_cast<std::uint8_t>(n)}});
      }
      level2.node(node).add_run_blob(run, "hops", std::to_string(run));
      level2.node(node).add_plugin_measurement(run, "plug", "m",
                                               std::to_string(n));
      level2.add_sync({run, node, n * 1000LL, run * 1'000'000'000LL});
      level2.mark_run_complete(run);
    }
    level2.node(node).add_experiment_blob("topo", node);
    level2.node(node).append_log("log of " + node + "\n");
  }
  return level2;
}

// ---- insert throughput -----------------------------------------------------

void BM_InsertColumnar(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  for (auto _ : state) {
    Table table = columnar_events(rows);
    benchmark::DoNotOptimize(table.row_count());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_InsertColumnar)->Arg(10'000)->Arg(100'000);

// ---- per-run point queries (the level-3 extraction hot path) ---------------

void BM_SelectEqualsSeedScan(benchmark::State& state) {
  SeedTable table = seed_events(state.range(0));
  std::int64_t run = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    hits += table.select_equals(0, Value{run % kRuns + 1}).size();
    ++run;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectEqualsSeedScan)->Arg(10'000)->Arg(100'000);

void BM_SelectEqualsColumnar(benchmark::State& state) {
  Table table = columnar_events(state.range(0));
  benchmark::DoNotOptimize(table.select_equals("RunID", Value{1}).size());
  std::int64_t run = 0;
  std::size_t hits = 0;
  for (auto _ : state) {
    hits += table.select_equals("RunID", Value{run % kRuns + 1}).size();
    ++run;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectEqualsColumnar)->Arg(10'000)->Arg(100'000);

// ---- ordered scans ---------------------------------------------------------

void BM_OrderBySeedSort(benchmark::State& state) {
  SeedTable table = seed_events(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.order_by(2).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderBySeedSort)->Arg(100'000);

void BM_OrderByColumnarCached(benchmark::State& state) {
  Table table = columnar_events(state.range(0));
  benchmark::DoNotOptimize(table.order_by("CommonTime").value().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.order_by("CommonTime").value().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderByColumnarCached)->Arg(100'000);

// ---- conditioning ----------------------------------------------------------

void bench_condition(benchmark::State& state, std::size_t workers,
                     bool seed_replica) {
  Level2Store level2 =
      busy_level2(static_cast<int>(state.range(0)), 200);
  std::size_t events = 0;
  for (auto _ : state) {
    if (seed_replica) {
      Result<ExperimentPackage> package =
          condition_seed_replica(level2, "<e/>");
      events += package.value().event_count();
    } else {
      ConditioningOptions options;
      options.workers = workers;
      Result<ExperimentPackage> package = condition(level2, "<e/>", options);
      events += package.value().event_count();
    }
  }
  benchmark::DoNotOptimize(events);
  state.SetItemsProcessed(state.iterations());
}

void BM_ConditionSeedReplica(benchmark::State& state) {
  bench_condition(state, 1, true);
}
BENCHMARK(BM_ConditionSeedReplica)->Arg(8)->Arg(20);

void BM_ConditionSequential(benchmark::State& state) {
  bench_condition(state, 1, false);
}
BENCHMARK(BM_ConditionSequential)->Arg(8)->Arg(20);

void BM_ConditionParallel(benchmark::State& state) {
  bench_condition(state, 0, false);
}
BENCHMARK(BM_ConditionParallel)->Arg(8)->Arg(20);

// ---- (de)serialisation bandwidth -------------------------------------------

void BM_DatabaseSerialize(benchmark::State& state) {
  Database db;
  Table* table = db.create_table(events_schema()).value();
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)table->insert(event_row(i));
  }
  std::size_t bytes = db.serialize().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.serialize().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DatabaseSerialize)->Arg(100'000);

void BM_DatabaseDeserialize(benchmark::State& state) {
  Database db;
  Table* table = db.create_table(events_schema()).value();
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    (void)table->insert(event_row(i));
  }
  Bytes image = db.serialize();
  for (auto _ : state) {
    Result<Database> back = Database::deserialize(image);
    benchmark::DoNotOptimize(back.value().table_count());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_DatabaseDeserialize)->Arg(100'000);

}  // namespace
}  // namespace excovery::storage

// Custom main: default the JSON output to BENCH_storage.json so the perf
// trajectory is tracked without remembering reporter flags.
int main(int argc, char** argv) {
  std::vector<std::string> args_storage(argv, argv + argc);
  bool has_out = false;
  for (const std::string& arg : args_storage) {
    if (arg.rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args_storage.push_back("--benchmark_out=BENCH_storage.json");
    args_storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(args_storage.size());
  for (std::string& arg : args_storage) args.push_back(arg.data());
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
