// The level-3 experiment package: one complete experiment in one database,
// with exactly the schema of the paper's Table I.
//
//   Table                  | Attributes
//   ExperimentInfo         | ExpXML, EEVersion, Name, Comment
//   Logs                   | NodeID, Log
//   EEFiles                | ID, File
//   ExperimentMeasurements | ID, NodeID, Name, Content
//   RunInfos               | RunID, NodeID, StartTime, TimeDiff
//   ExtraRunMeasurements   | RunID, NodeID, Name, Content
//   Events                 | RunID, NodeID, CommonTime, EventType, Parameter
//   Packets                | RunID, NodeID, CommonTime, SrcNodeID, Data
//
// Two extensions beyond Table I, both written by the observability layer
// (src/obs), both part of the fresh-package schema but not required on load
// so packages written by older versions still open:
//   Metrics    | RunID, Name, Value — framework self-measurements;
//   Provenance | RunID, Path, Seq, Kind, NodeID, Detail, Time, Latency —
//     per-discovery critical paths from causal lineage tracing
//     (DESIGN.md §16).
#pragma once

#include <string>

#include "storage/database.hpp"

namespace excovery::storage {

/// Version string recorded as EEVersion in every package.
inline constexpr const char* kEeVersion = "excovery-cpp 1.0.0";

/// A typed event row (conditioned: CommonTime is on the reference
/// timeline, in seconds).
struct EventRow {
  std::int64_t run_id = 0;
  std::string node_id;
  double common_time = 0.0;
  std::string event_type;
  std::string parameter;
};

/// A typed packet row (conditioned).
struct PacketRow {
  std::int64_t run_id = 0;
  std::string node_id;      ///< capturing node
  double common_time = 0.0;
  std::string src_node_id;  ///< originating node
  Bytes data;               ///< raw packet bytes (unaltered content)
};

/// One framework-metric value (see src/obs).  RunID -1 carries
/// experiment-wide aggregates; run-scoped rows use the real run id.
struct MetricRow {
  std::int64_t run_id = 0;
  std::string name;
  double value = 0.0;
};

/// One step of a discovery's critical path (see obs::CriticalPath).  Rows
/// with the same (RunID, Path) form one root-to-discovery chain ordered by
/// Seq; Time is the step's common time (seconds into the run's timeline),
/// Latency the seconds elapsed since the previous step.
struct ProvenanceRow {
  std::int64_t run_id = 0;
  std::int64_t path = 0;  ///< per-run path index (one per discovery)
  std::int64_t seq = 0;   ///< step index within the path, root first
  std::string kind;       ///< lineage kind ("root", "send", "deliver", …)
  std::string node_id;    ///< node the step happened on
  std::string detail;     ///< site detail (label / instance / cause)
  double time = 0.0;
  double latency = 0.0;
};

/// Per-run bookkeeping.
struct RunInfoRow {
  std::int64_t run_id = 0;
  std::string node_id;
  double start_time = 0.0;  ///< common-time start of the run
  double time_diff = 0.0;   ///< estimated node clock offset (seconds)
};

class ExperimentPackage {
 public:
  /// Fresh package with the Table I schema.
  ExperimentPackage();

  /// Wrap an existing database (load path); validates the schema.
  static Result<ExperimentPackage> from_database(Database db);

  // ---- single-tuple experiment info -------------------------------------
  Status set_experiment_info(const std::string& description_xml,
                             const std::string& name,
                             const std::string& comment);
  Result<std::string> description_xml() const;
  Result<std::string> experiment_name() const;
  Result<std::string> ee_version() const;

  // ---- writers -----------------------------------------------------------
  Status add_log(const std::string& node_id, const std::string& log_text);
  Status add_ee_file(const std::string& id, Bytes contents);
  Status add_experiment_measurement(std::int64_t id,
                                    const std::string& node_id,
                                    const std::string& name,
                                    const std::string& content);
  Status add_run_info(const RunInfoRow& info);
  Status add_extra_run_measurement(std::int64_t run_id,
                                   const std::string& node_id,
                                   const std::string& name,
                                   const std::string& content);
  Status add_event(const EventRow& event);
  Status add_packet(const PacketRow& packet);
  /// Append to the Metrics table (created on demand, so packages written by
  /// older versions accept metric rows too).
  Status add_metric(std::int64_t run_id, const std::string& name,
                    double value);
  /// Append to the Provenance table (created on demand, like Metrics).
  Status add_provenance(const ProvenanceRow& row);

  // ---- readers -----------------------------------------------------------
  /// Events of one run, ordered by CommonTime.
  Result<std::vector<EventRow>> events(std::int64_t run_id) const;
  /// All events, ordered by (RunID, CommonTime).
  Result<std::vector<EventRow>> all_events() const;
  /// Packets of one run, ordered by CommonTime.
  Result<std::vector<PacketRow>> packets(std::int64_t run_id) const;
  Result<std::vector<RunInfoRow>> run_infos() const;
  /// All metric rows in insertion order ([] for packages without the table).
  std::vector<MetricRow> metrics() const;
  /// All provenance rows in insertion order ([] when the table is absent).
  std::vector<ProvenanceRow> provenance() const;
  /// Distinct run ids present in RunInfos, ascending.
  std::vector<std::int64_t> run_ids() const;
  /// Log text for a node ("" if absent).
  std::string log_for(const std::string& node_id) const;

  std::size_t event_count() const;
  std::size_t packet_count() const;

  const Database& database() const noexcept { return db_; }
  Database& database() noexcept { return db_; }

  Status save(const std::string& path) const { return db_.save(path); }
  static Result<ExperimentPackage> load(const std::string& path);

 private:
  explicit ExperimentPackage(Database db) : db_(std::move(db)) {}
  Status check_schema() const;

  Database db_;
};

}  // namespace excovery::storage
