// The abstract experiment description (§IV-C).
//
// "ExCovery executes experiments on the base of an abstract description
// made up of three parts.  The first contains the experiment design, which
// factors are applied in which combination and order.  The second part
// contains manipulations on the process environment and the participants
// themselves ... The third part is the description of the distributed
// process to be examined.  ExCovery uses XML to notate the description."
//
// The XML dialect follows the paper's listings (Figures 4-10):
//
//   <experiment name="..." seed="...">
//     <parameterlist>                        (Fig. 4: informative params)
//       <parameter key="sd_architecture">two-party</parameter> ...
//     </parameterlist>
//     <nodelist><node id="A"/><node id="B"/></nodelist>
//     <factorlist>                           (Fig. 5)
//       <factor id="..." type="..." usage="blocking|random|constant">
//         <levels><level>...</level>...</levels>
//       </factor>
//       <replicationfactor usage="replication" type="int" id="...">N
//       </replicationfactor>
//     </factorlist>
//     <processes>                            (Fig. 6, 9, 10)
//       <node_process>
//         <nodes><factorref id="fact_nodes"/></nodes>
//         <actor id="actor0" name="SM"><sd_actions>...</sd_actions></actor>
//       </node_process>
//       <manipulation_process node="A"><actions>...</actions>
//       </manipulation_process>
//       <env_process><env_actions>...</env_actions></env_process> (Fig. 7)
//     </processes>
//     <platform>                             (Fig. 8)
//       <actor_nodes><node id="..." abstract="..." address="..."/>...
//       </actor_nodes>
//       <environment_nodes><node id="..." address="..."/>...
//       </environment_nodes>
//     </platform>
//   </experiment>
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"
#include "xml/dom.hpp"
#include "xml/schema.hpp"

namespace excovery::core {

/// How a factor participates in the design (§II-A1 taxonomy, Fig. 5 usage
/// attribute).
enum class FactorUsage {
  kBlocking,   ///< controllable nuisance factor: outermost, ordered
  kConstant,   ///< held-constant per treatment, swept one-after-another
  kRandom,     ///< design factor whose level order is randomised
  kReplication ///< the replication count (paper's <replicationfactor>)
};

Result<FactorUsage> parse_factor_usage(const std::string& text);
std::string_view to_string(FactorUsage usage) noexcept;

/// A treatment factor with its set of levels (§IV-C: "Factor ... consists
/// of a set of levels").  Levels are Values; for type "actor_node_map" each
/// level is a map actor-id -> array of abstract node ids.
struct Factor {
  std::string id;
  std::string type;  ///< "int", "double", "string", "actor_node_map"
  FactorUsage usage = FactorUsage::kConstant;
  std::vector<Value> levels;
};

/// Selector for a set of nodes by actor role ("<node actor='actor0'
/// instance='all'/>"), used in from/param dependencies and action targets.
struct NodeSetRef {
  std::string actor;     ///< actor id; empty = any
  std::string instance;  ///< "all", a number, or empty (= all)
};

/// A parameter of an action: a literal value, a reference to a factor, or
/// a node-set selector.
struct ParamValue {
  enum class Kind { kLiteral, kFactorRef, kNodeSet };
  Kind kind = Kind::kLiteral;
  Value literal;
  std::string factor_id;
  NodeSetRef node_set;

  static ParamValue lit(Value v) {
    ParamValue p;
    p.literal = std::move(v);
    return p;
  }
  static ParamValue factor(std::string id) {
    ParamValue p;
    p.kind = Kind::kFactorRef;
    p.factor_id = std::move(id);
    return p;
  }
  static ParamValue nodes(NodeSetRef ref) {
    ParamValue p;
    p.kind = Kind::kNodeSet;
    p.node_set = std::move(ref);
    return p;
  }
};

/// One step of a process: an action name plus named parameters.  Flow
/// control functions (§IV-C2) use the reserved names wait_for_time,
/// wait_for_event, wait_marker and event_flag.
struct ProcessAction {
  std::string name;
  std::vector<std::pair<std::string, ParamValue>> params;

  /// First parameter with the given name, or nullptr.
  const ParamValue* param(std::string_view name) const;
};

/// An actor description: "Process prototype to be executed on one specific
/// actor of the experiment process.  Each abstract node is mapped to one
/// actor description, multiple abstract nodes can instantiate the same
/// actor description."
struct ActorProcess {
  std::string actor_id;   ///< e.g. "actor0"
  std::string name;       ///< e.g. "SM"
  std::vector<ProcessAction> actions;
};

/// A fault/manipulation process bound to one abstract node (§IV-D3).
struct ManipulationProcess {
  std::string node_id;  ///< abstract node the process runs for
  std::vector<ProcessAction> actions;
};

/// The environment manipulation process: "not node specific ... controls
/// manipulations to the environment, like traffic generation."
struct EnvProcess {
  std::vector<ProcessAction> actions;
};

/// Platform node mapping (Fig. 8): abstract/environment node to concrete
/// platform node (identified by host name) and network address.
struct PlatformNode {
  std::string id;           ///< concrete platform node (host name)
  std::string abstract_id;  ///< mapped abstract node ("" for env nodes)
  std::string address;      ///< IP address text
};

struct PlatformSpec {
  std::vector<PlatformNode> actor_nodes;
  std::vector<PlatformNode> environment_nodes;
};

struct ExperimentDescription {
  std::string name = "experiment";
  std::uint64_t seed = 1;  ///< master PRNG seed (§IV-C1: "clearly defined")
  ValueMap info_params;    ///< Fig. 4 informative key-value parameters

  std::vector<std::string> abstract_nodes;
  std::vector<Factor> factors;
  std::string replication_factor_id = "fact_replication";
  int replications = 1;

  /// The actor-map factor naming which factor assigns nodes to actors.
  std::string node_factor_id;

  std::vector<ActorProcess> actor_processes;
  std::vector<ManipulationProcess> manipulation_processes;
  std::vector<EnvProcess> env_processes;
  PlatformSpec platform;

  // ---- lookups -----------------------------------------------------------
  const Factor* find_factor(std::string_view id) const;
  const ActorProcess* find_actor(std::string_view actor_id) const;
  /// Informative parameter (Fig. 4), "" if absent.
  std::string info(const std::string& key) const;

  // ---- XML ---------------------------------------------------------------
  static Result<ExperimentDescription> from_xml(const xml::Element& root);
  static Result<ExperimentDescription> parse(const std::string& xml_text);
  /// Serialise into a fresh arena-backed document.
  xml::Document to_xml() const;
  std::string to_xml_text() const;

  /// Semantic validation: factor references resolve, node maps reference
  /// declared abstract nodes, platform maps every abstract node, etc.
  Status validate() const;
};

/// Schema for the description dialect (§IV-C: "An XML schema description is
/// provided with the framework code").
const xml::Schema& description_schema();

}  // namespace excovery::core
