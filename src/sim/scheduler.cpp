#include "sim/scheduler.hpp"

#include <algorithm>

namespace excovery::sim {

TimerHandle Scheduler::schedule(SimDuration delay, Callback fn) {
  if (delay < SimDuration::zero()) delay = SimDuration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.armed = false;
  if (++slot.generation == 0) ++slot.generation;  // 0 marks invalid handles
  free_slots_.push_back(index);
  --live_count_;
}

TimerHandle Scheduler::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.armed = true;
#if EXCOVERY_OBS_ENABLED
  slot.ctx = current_ctx_;
#endif
  slot.fn = std::move(fn);
  heap_push(HeapEntry{when, next_seq_++, index, slot.generation});
  ++live_count_;
#if EXCOVERY_OBS_ENABLED
  if (live_count_ > max_pending_) max_pending_ = live_count_;
#endif
  return TimerHandle(index, slot.generation);
}

void Scheduler::cancel(TimerHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return;
  const Slot& slot = slots_[handle.slot_];
  // Generation mismatch = the handle's timer already ran or was cancelled
  // (possibly with the slot since reused); never touch the new occupant.
  if (!slot.armed || slot.generation != handle.generation_) return;
#if EXCOVERY_OBS_ENABLED
  ++cancelled_;
#endif
  release_slot(handle.slot_);
  // The heap entry stays behind and is skipped lazily on pop: its recorded
  // generation no longer matches the slot.
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    HeapEntry entry = heap_.front();
    heap_pop_root();
    if (!entry_live(entry)) continue;  // cancelled (single indexed check)
    Callback fn = std::move(slots_[entry.slot].fn);
#if EXCOVERY_OBS_ENABLED
    // Read the captured context before release_slot recycles the slot.
    const std::uint64_t ctx = slots_[entry.slot].ctx;
#endif
    // Release before invoking: the callback may reschedule into this very
    // slot, and cancelling the executing handle must be a no-op.
    release_slot(entry.slot);
    now_ = entry.when;
    ++executed_;
#if EXCOVERY_OBS_ENABLED
    current_ctx_ = ctx;
#endif
    fn();
#if EXCOVERY_OBS_ENABLED
    current_ctx_ = 0;
#endif
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t executed = 0;
  while ((limit == 0 || executed < limit) && step()) ++executed;
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Skip over cancelled heads without advancing time.
    HeapEntry entry = heap_.front();
    if (!entry_live(entry)) {
      heap_pop_root();
      continue;
    }
    if (entry.when > deadline) break;
    heap_pop_root();
    Callback fn = std::move(slots_[entry.slot].fn);
#if EXCOVERY_OBS_ENABLED
    const std::uint64_t ctx = slots_[entry.slot].ctx;
#endif
    release_slot(entry.slot);
    now_ = entry.when;
    ++executed_;
    ++executed;
#if EXCOVERY_OBS_ENABLED
    current_ctx_ = ctx;
#endif
    fn();
#if EXCOVERY_OBS_ENABLED
    current_ctx_ = 0;
#endif
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void Scheduler::heap_push(const HeapEntry& entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    std::size_t parent = (i - 1) / 4;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::heap_pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace excovery::sim
