// Wire format of the SD protocols.
//
// One message framing serves both the mDNS-style and the SLP-style
// protocol (they differ in message kinds used and in transport pattern).
// Every message carries a transaction id; responses echo the id of the
// query that solicited them — this reproduces the paper's modification of
// Avahi "to allow the association of request and response pairs" (§VI),
// enabling response-time analysis at packet level, not just operation
// level.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "sd/model.hpp"

namespace excovery::sd {

enum class MessageKind : std::uint8_t {
  // Two-party (mDNS-style)
  kQuery = 1,        ///< multicast question for a service type
  kResponse = 2,     ///< answer carrying service records
  kAnnounce = 3,     ///< unsolicited announcement (passive discovery)
  kGoodbye = 4,      ///< record withdrawal (ttl = 0)
  kProbe = 5,        ///< uniqueness probe before announcing
  // Three-party (SLP-style)
  kScmQuery = 10,    ///< multicast "where is a directory?"
  kScmAdvert = 11,   ///< SCM advertisement (solicited or heartbeat)
  kRegister = 12,    ///< SM -> SCM service registration
  kRegisterAck = 13, ///< SCM -> SM acknowledgement
  kDeregister = 14,  ///< SM -> SCM withdrawal
  kDirectedQuery = 15,  ///< SU -> SCM unicast lookup
  kDirectedReply = 16,  ///< SCM -> SU results
};

std::string_view to_string(MessageKind kind) noexcept;

/// A service record as carried on the wire: the instance plus its remaining
/// time-to-live in seconds.  ttl == 0 withdraws the record.
struct ServiceRecord {
  ServiceInstance instance;
  std::uint32_t ttl_seconds = 120;

  friend bool operator==(const ServiceRecord&,
                         const ServiceRecord&) = default;
};

/// A known-answer entry in a query: responders suppress answers the asker
/// already holds with at least half the original TTL (mDNS known-answer
/// suppression).
struct KnownAnswer {
  std::string instance_name;
  std::uint32_t remaining_ttl_seconds = 0;

  friend bool operator==(const KnownAnswer&, const KnownAnswer&) = default;
};

struct SdMessage {
  MessageKind kind = MessageKind::kQuery;
  std::uint32_t txn_id = 0;    ///< request/response pairing id
  ServiceType service_type;    ///< queried or carried type
  std::vector<ServiceRecord> records;
  std::vector<KnownAnswer> known_answers;
  std::uint32_t lease_seconds = 0;  ///< registration lease (3-party)
  std::string sender_name;     ///< SM/SCM identity for registration events

  friend bool operator==(const SdMessage&, const SdMessage&) = default;
};

/// Serialise to a packet payload.
Bytes encode(const SdMessage& message);

/// Parse a payload; malformed payloads yield kParse errors (a real stack
/// must tolerate garbage — fault injection can corrupt content).
Result<SdMessage> decode(const Bytes& payload);

}  // namespace excovery::sd
