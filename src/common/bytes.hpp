// Endian-stable binary encoding used by packet payloads and the level-3
// storage package file format.  Everything is little-endian on the wire.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"

namespace excovery {

/// Append-only binary writer.
class ByteWriter {
 public:
  const Bytes& bytes() const noexcept { return buffer_; }
  Bytes take() noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u32) string.
  void string(std::string_view s);
  /// Length-prefixed (u32) raw bytes.
  void blob(const Bytes& b);
  /// Raw bytes, no length prefix.
  void raw(const std::uint8_t* data, std::size_t size);
  /// Tagged Value (recursive over arrays/maps).
  void value(const Value& v);

 private:
  Bytes buffer_;
};

/// Sequential binary reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& bytes) noexcept
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= size_; }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<std::string> string();
  Result<Bytes> blob();
  Result<Value> value();
  /// Copy out `size` raw bytes.
  Result<Bytes> raw(std::size_t size);

 private:
  Status need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace excovery
