file(REMOVE_RECURSE
  "CMakeFiles/excovery_stats.dir/analysis.cpp.o"
  "CMakeFiles/excovery_stats.dir/analysis.cpp.o.d"
  "CMakeFiles/excovery_stats.dir/metrics.cpp.o"
  "CMakeFiles/excovery_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/excovery_stats.dir/timeline.cpp.o"
  "CMakeFiles/excovery_stats.dir/timeline.cpp.o.d"
  "libexcovery_stats.a"
  "libexcovery_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
