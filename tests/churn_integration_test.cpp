// Dynamic-world integration tests (DESIGN.md §12): crash/restart churn with
// graceful SD degradation, hybrid fallback when the SCM is partitioned away,
// and per-kind fault counters flowing into the level-3 Metrics table.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "faults/schedule.hpp"
#include "obs/obs.hpp"
#include "sd/hybrid.hpp"
#include "stats/analysis.hpp"

namespace excovery {
namespace {

Result<storage::ExperimentPackage> execute_options(
    const core::scenario::TwoPartyOptions& options, std::uint64_t seed,
    core::MasterOptions master_options = {}) {
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = seed;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::SimPlatform> platform,
      core::SimPlatform::create(description, std::move(config)));
  core::ExperiMaster master(description, *platform,
                            std::move(master_options));
  return master.execute();
}

// Acceptance: a crash-restarted SM loses its announcements and caches, yet
// re-registers through the normal protocol machinery on restart and is
// re-discovered by an SU that started searching while the SM was down.
TEST(ChurnIntegration, CrashedSmReRegistersAndIsRediscovered) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 0;
  options.deadline_s = 12.0;
  // Fixed churn: SM up [0,2), down [2,4), up [4,6), ...  The SU starts its
  // search ~2.5 s after the publish completes, i.e. inside the first down
  // window, so any discovery must come from the restarted SM.
  options.su_start_delay_s = 2.5;
  options.dynamic.sm_churn = true;
  options.dynamic.churn_distribution = "fixed";
  options.dynamic.churn_mean_uptime_s = 2.0;
  options.dynamic.churn_mean_downtime_s = 2.0;

  Result<storage::ExperimentPackage> package = execute_options(options, 5);
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  ASSERT_EQ(package.value().run_ids().size(), 1u);

  Result<std::vector<storage::EventRow>> events = package.value().events(1);
  ASSERT_TRUE(events.ok());
  int downs = 0;
  int ups = 0;
  double first_up = -1.0;
  for (const storage::EventRow& event : events.value()) {
    if (event.node_id != "SM0") continue;
    if (event.event_type == "fault_node_down") ++downs;
    if (event.event_type == "fault_node_up") {
      ++ups;
      if (first_up < 0.0) first_up = event.common_time;
    }
  }
  EXPECT_GE(downs, 1);
  EXPECT_GE(ups, 1);
  ASSERT_GT(first_up, 0.0);

  // The SU discovered the service, and only after the SM came back: the
  // restart replayed sd_init + sd_start_publish, whose announcements reach
  // the already-searching SU.
  bool discovered_after_restart = false;
  for (const storage::EventRow& event : events.value()) {
    if (event.node_id == "SU0" && event.event_type == "sd_service_add") {
      EXPECT_GT(event.common_time, first_up);
      discovered_after_restart = true;
    }
  }
  EXPECT_TRUE(discovered_after_restart);

  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  ASSERT_TRUE(discoveries.ok());
  ASSERT_EQ(discoveries.value().size(), 1u);
  EXPECT_EQ(discoveries.value()[0].latencies.size(), 1u);
}

// Acceptance: the hybrid SDP degrades gracefully when its SCM is cut off by
// an engine-driven partition — the watchdog leaves directed mode and
// discovery proceeds over multicast; healing the partition restores
// directed operation.
TEST(ChurnIntegration, HybridFallsBackWhenScmPartitionedAway) {
  sim::Scheduler scheduler;
  net::Network network(scheduler, net::Topology::full_mesh(3), 1);
  faults::FaultInjector injector(network, 5353);
  faults::FaultScheduleEngine engine(injector);

  std::vector<std::pair<std::string, std::string>> events;
  std::vector<std::unique_ptr<sd::HybridAgent>> agents;
  for (net::NodeId i = 0; i < 3; ++i) {
    agents.push_back(std::make_unique<sd::HybridAgent>(
        network, i, sd::HybridConfig{}));
    std::string name = network.topology().node(i).name;
    agents.back()->set_event_sink(
        [&events, name](std::string_view event, const Value& param) {
          events.emplace_back(name,
                              std::string(event) + ":" + param.to_text());
        });
  }
  auto count_event = [&](const std::string& node, const std::string& tagged) {
    int n = 0;
    for (const auto& [en, ev] : events) {
      if (en == node && ev == tagged) ++n;
    }
    return n;
  };
  auto run_for = [&](double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  };

  ASSERT_TRUE(agents[0]->init(sd::SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(agents[1]->init(sd::SdRole::kServiceUser, {}).ok());
  ASSERT_TRUE(agents[2]->init(sd::SdRole::kServiceCacheManager, {}).ok());
  run_for(3.0);
  ASSERT_TRUE(agents[1]->start_search("_t._udp").ok());
  run_for(1.0);
  ASSERT_TRUE(agents[1]->directed_mode());

  // Partition the SCM away.  No adverts get through; after scm_timeout
  // (12 s) + the 2 s watchdog tick the SU must leave directed mode.
  Result<faults::FaultHandle> partition = engine.partition({2});
  ASSERT_TRUE(partition.ok());
  run_for(16.0);
  EXPECT_FALSE(agents[1]->directed_mode());

  // Multicast discovery works while the partition is still up: a service
  // published mid-partition is found via the re-enabled mDNS search.
  sd::ServiceInstance late;
  late.instance_name = "late";
  late.type = "_t._udp";
  late.port = 80;
  ASSERT_TRUE(agents[0]->start_publish(late).ok());
  run_for(5.0);
  EXPECT_EQ(count_event("n1", "sd_service_add:late"), 1);

  // Heal: SCM adverts resume, the SU re-enters directed mode.
  partition.value()->stop();
  run_for(10.0);
  EXPECT_TRUE(agents[1]->directed_mode());
  EXPECT_GE(count_event("n1", "scm_found:n2"), 2);
}

#if EXCOVERY_OBS_ENABLED
// Satellite: deterministic per-kind fault counters surface as
// `faults.<kind>.<counter>` ledger rows in the level-3 Metrics table.
TEST(ChurnIntegration, FaultCountersReachMetricsTable) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 1;
  options.deadline_s = 8.0;
  options.dynamic.sm_churn = true;
  options.dynamic.churn_mean_uptime_s = 2.0;
  options.dynamic.churn_mean_downtime_s = 0.5;
  options.dynamic.ge_loss = true;
  options.dynamic.partition_nodes = {"ENV0"};
  options.dynamic.partition_start_s = 1.0;
  options.dynamic.partition_duration_s = 3.0;

  obs::ObsContext obs;
  core::MasterOptions master_options;
  master_options.obs = &obs;
  Result<storage::ExperimentPackage> package =
      execute_options(options, 13, std::move(master_options));
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  ASSERT_TRUE(obs.export_metrics(package.value()).ok());

  std::vector<storage::MetricRow> rows = package.value().metrics();
  auto has_row = [&](const std::string& name) {
    return std::any_of(rows.begin(), rows.end(),
                       [&](const storage::MetricRow& row) {
                         return row.name == name && row.value >= 1.0;
                       });
  };
  EXPECT_TRUE(has_row("faults.activations"));
  EXPECT_TRUE(has_row("faults.node_churn.activations"));
  EXPECT_TRUE(has_row("faults.ge_loss.activations"));
  EXPECT_TRUE(has_row("faults.partition.activations"));
}
#endif  // EXCOVERY_OBS_ENABLED

}  // namespace
}  // namespace excovery
