// Observability context: one object owning the metrics registry, the trace
// buffer and the per-run metrics ledger for a whole experiment execution
// (DESIGN.md §11).
//
// Everything here is out-of-band with respect to measurement: attaching an
// ObsContext (or not), the worker count, and the EXCOVERY_OBS build switch
// must not change a single byte of the conditioned level-3 package.  Export
// into a package's Metrics table only happens through the explicit
// export_metrics() call.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace excovery::storage {
class ExperimentPackage;
}

namespace excovery::obs {

struct ObsConfig {
  /// Collect trace events (spans, packet lifecycles).  Metrics are always
  /// collected while a context is attached.
  bool trace = true;
  /// Record per-packet lifecycle events on the sim track.  Off by default:
  /// at one async pair per packet this dominates trace size on large runs.
  bool packet_trace = false;
  /// Minimum seconds between run-progress log lines (<= 0 logs every run).
  double progress_interval_s = 1.0;
};

/// Pre-registered ids for every built-in metric, so hot paths never touch
/// the registry.  Grouped by determinism domain (see MetricDomain).
struct MetricIds {
  // -- deterministic: pure functions of the experiment ---------------------
  MetricId runs_completed;        ///< runs that reached cleanup
  MetricId runs_attempts;         ///< run attempts started (>= completed)
  MetricId runs_retries;          ///< aborted attempts that were retried
  MetricId runs_watchdog_aborts;  ///< attempts killed by the run watchdog
  MetricId runs_deadlock_aborts;  ///< attempts killed by deadlock detection
  MetricId bus_published;         ///< EventBus events published inside runs
  MetricId bus_dispatched;        ///< subscriber callbacks invoked
  MetricId net_sent;              ///< packets sent (first hop)
  MetricId net_delivered;         ///< packets handed to a receiver
  MetricId net_forwarded;         ///< multi-hop forwards
  MetricId net_dropped;           ///< drops, all causes
  MetricId net_bytes_sent;        ///< payload bytes sent
  MetricId fault_activations;     ///< fault-injector activations
  MetricId fault_deactivations;   ///< fault-injector deactivations
  MetricId fault_packets_dropped;    ///< packets dropped by fault filters
  MetricId fault_packets_delayed;    ///< packets delayed by fault filters
  MetricId fault_packets_duplicated; ///< duplicate copies injected
  MetricId fault_packets_reordered;  ///< packets held back for reordering
  MetricId run_sim_seconds;       ///< log-hist of per-run simulated duration

  // -- best-effort: simulated-time derived but instance-dependent ----------
  MetricId sched_events_executed;  ///< kernel callbacks dispatched
  MetricId sched_timers_cancelled; ///< timers cancelled before firing
  MetricId sched_max_pending;      ///< gauge: pending-event high water
  MetricId sched_arena_slots;      ///< gauge: timer-arena slot count

  // -- wall: real-time measurements, never exported into packages ----------
  MetricId run_wall_ns;            ///< log-hist of per-attempt wall time
  MetricId pool_tasks;             ///< thread-pool tasks executed
  MetricId pool_queue_delay_ns;    ///< log-hist: enqueue -> start
  MetricId pool_busy_ns;           ///< log-hist: task execution time
  MetricId condition_wall_ns;      ///< log-hist: conditioning phase wall time
  MetricId condition_shards;       ///< node shards conditioned
};

/// Named per-run scalar metrics ("this run executed N kernel events").
/// Every entry is attributable to exactly one run, so the collection is a
/// set — identical no matter which worker recorded which run, and exported
/// in (run, name) order.
class RunMetricsLedger {
 public:
  struct Entry {
    std::int64_t run_id = 0;
    std::string name;
    double value = 0.0;
  };

  void record(std::int64_t run_id, std::string_view name, double value);
  /// All entries ordered by (run_id, name).
  std::vector<Entry> sorted() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

class ObsContext {
 public:
  explicit ObsContext(ObsConfig config = {});

  const ObsConfig& config() const noexcept { return config_; }
  MetricsRegistry& registry() noexcept { return registry_; }
  const MetricIds& ids() const noexcept { return ids_; }
  TraceBuffer& trace() noexcept { return trace_; }
  RunMetricsLedger& ledger() noexcept { return ledger_; }
  ProvenanceLedger& provenance() noexcept { return provenance_; }
  const ProvenanceLedger& provenance() const noexcept { return provenance_; }

  /// Fresh shard over this context's registry, for one worker/instance to
  /// record into without synchronisation.
  MetricsShard make_shard() const { return MetricsShard(&registry_); }
  /// Fold a finished shard into the merged view (thread-safe).
  void merge_shard(const MetricsShard& shard);

  /// Locked single-value recording, for cold paths without their own shard.
  void add(MetricId id, std::uint64_t n = 1);
  void observe(MetricId id, double value);
  void set_gauge(MetricId id, std::int64_t value);

  /// Copy of a metric's merged state (zero cell if never recorded).
  MetricCell merged_cell(MetricId id) const;

  /// Observer recording pool utilization into this context; pass to
  /// ThreadPool::set_observer.  Owned by the context.
  ThreadPoolObserver* pool_observer() noexcept { return &pool_observer_; }

  /// Rate-limited run-progress report (INFO log + wall-track counter).
  void report_progress(std::size_t completed, std::size_t total,
                       std::int64_t run_id, int attempt);

  /// Canonical rendering of every deterministic-domain value: merged
  /// deterministic metrics plus the full ledger.  Two executions of the same
  /// experiment must produce identical strings regardless of run_workers —
  /// this is the determinism contract the tests pin down.
  std::string format_deterministic_metrics() const;

  /// Full metrics dump (all domains) as a JSON object, with per-name
  /// mean/p50/p95 summaries over the run ledger.
  std::string metrics_json() const;
  Status write_metrics_json(const std::string& path) const;

  /// Write the ledger (and merged deterministic counters as RunID -1 rows)
  /// into the package's Metrics table.
  Status export_metrics(storage::ExperimentPackage& package) const;

  /// Per-discovery critical paths (DESIGN.md §16) as a JSON object, one
  /// entry per (run, path) with its root-to-discovery steps.  Deterministic:
  /// identical across run_workers values.
  std::string provenance_json() const;
  Status write_provenance_json(const std::string& path) const;

  /// Write the provenance ledger into the package's Provenance table.
  Status export_provenance(storage::ExperimentPackage& package) const;

 private:
  class PoolObserverImpl : public ThreadPoolObserver {
   public:
    explicit PoolObserverImpl(ObsContext* owner) : owner_(owner) {}
    void on_task(std::int64_t queue_delay_ns, std::int64_t busy_ns) override;

   private:
    ObsContext* owner_;
  };

  ObsConfig config_;
  MetricsRegistry registry_;
  MetricIds ids_;
  TraceBuffer trace_;
  RunMetricsLedger ledger_;
  ProvenanceLedger provenance_;

  mutable std::mutex merge_mutex_;
  MetricsShard merged_;

  PoolObserverImpl pool_observer_{this};

  std::mutex progress_mutex_;
  std::chrono::steady_clock::time_point started_;
  std::chrono::steady_clock::time_point last_progress_log_;
  bool progress_logged_ = false;
};

}  // namespace excovery::obs
