# Empty compiler generated dependencies file for analysis_export.
# This may be replaced when dependencies are built.
