// Lifetime guard for scheduled callbacks.
//
// Agents schedule timers that can outlive them: the NodeManager replaces
// its SD agent between runs, and the scheduler has no way to know which
// pending entries belonged to the old one.  The classic guard — capture a
// generation number and compare it against a member on fire — is a
// use-after-free when the owner is already destroyed, because the compare
// itself dereferences the dead object.  GenerationGate moves the counter
// into a shared heap cell that the callbacks co-own, so the staleness
// check stays valid after the owner is gone; only once the check passes is
// touching the owner safe (every destruction path bumps the gate first).
#pragma once

#include <cstdint>
#include <memory>

namespace excovery::sim {

class GenerationGate {
 public:
  GenerationGate() : cell_(std::make_shared<std::uint64_t>(0)) {}

  /// Current generation; capture alongside `token()` when scheduling.
  std::uint64_t value() const noexcept { return *cell_; }

  /// Invalidates everything scheduled under earlier values.  Call from
  /// every path that stops or destroys the owner, before teardown.
  void bump() noexcept { ++*cell_; }

  /// Shared view of the counter cell.  A callback holding the token may
  /// compare `*token != generation` even after the gate's owner died.
  std::shared_ptr<const std::uint64_t> token() const noexcept {
    return cell_;
  }

 private:
  std::shared_ptr<std::uint64_t> cell_;
};

}  // namespace excovery::sim
