# Empty dependencies file for excovery_faults.
# This may be replaced when dependencies are built.
