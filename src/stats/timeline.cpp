#include "stats/timeline.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"

namespace excovery::stats {

Result<std::string> render_timeline(const storage::ExperimentPackage& package,
                                    std::int64_t run_id,
                                    const TimelineOptions& options) {
  EXC_ASSIGN_OR_RETURN(std::vector<storage::EventRow> events,
                       package.events(run_id));
  if (events.empty()) {
    return err_not_found("run " + std::to_string(run_id) + " has no events");
  }

  double t0 = events.front().common_time;
  double t1 = events.back().common_time;
  double span = std::max(t1 - t0, 1e-9);
  std::size_t width = std::max<std::size_t>(options.width, 16);
  auto column = [&](double time) {
    auto c = static_cast<std::size_t>((time - t0) / span *
                                      static_cast<double>(width - 1));
    return std::min(c, width - 1);
  };

  // Lanes in order of first appearance.
  std::vector<std::string> lanes;
  for (const storage::EventRow& event : events) {
    if (std::find(lanes.begin(), lanes.end(), event.node_id) == lanes.end()) {
      lanes.push_back(event.node_id);
    }
  }
  std::size_t lane_width = 12;
  for (const std::string& lane : lanes) {
    lane_width = std::max(lane_width, lane.size() + 2);
  }

  auto draw_marker = [&](const storage::EventRow& event) {
    if (options.marker_events.empty()) return true;
    return std::find(options.marker_events.begin(),
                     options.marker_events.end(),
                     event.event_type) != options.marker_events.end();
  };

  std::string out;
  out += strings::format("run %lld timeline  [%.6fs .. %.6fs]\n",
                         static_cast<long long>(run_id), t0, t1);

  // Phase ruler: preparation ends at the first sd_start_search, clean-up
  // begins at the first "done" (the Fig. 11 convention).
  if (options.mark_phases) {
    double search = -1;
    double done = -1;
    for (const storage::EventRow& event : events) {
      if (event.event_type == "sd_start_search" && search < 0) {
        search = event.common_time;
      }
      if (event.event_type == "done" && done < 0) done = event.common_time;
    }
    std::string ruler(width, ' ');
    if (search >= 0) ruler[column(search)] = '|';
    if (done >= 0) ruler[column(done)] = '|';
    out += std::string(lane_width, ' ') + ruler + "\n";
    std::string labels(width, ' ');
    auto place = [&](double time, const std::string& text) {
      if (time < 0) return;
      std::size_t at = column(time);
      for (std::size_t i = 0; i < text.size() && at + i < width; ++i) {
        labels[at + i] = text[i];
      }
    };
    place(search, "<execute");
    place(done, "<clean-up");
    out += std::string(lane_width, ' ') + labels + "\n";
  }

  // One lane per node: '*' marks an event occurrence.
  for (const std::string& lane : lanes) {
    std::string row(width, '-');
    for (const storage::EventRow& event : events) {
      if (event.node_id != lane || !draw_marker(event)) continue;
      row[column(event.common_time)] = '*';
    }
    out += strings::format("%-*s%s\n", static_cast<int>(lane_width),
                           lane.c_str(), row.c_str());
  }

  // Legend: the marked events in time order, with lane and column.
  out += "\n";
  for (const storage::EventRow& event : events) {
    if (!draw_marker(event)) continue;
    out += strings::format("  %10.6fs  %-12s %-24s %s\n", event.common_time,
                           event.node_id.c_str(), event.event_type.c_str(),
                           event.parameter.c_str());
  }
  return out;
}

}  // namespace excovery::stats
