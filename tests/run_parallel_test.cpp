// Intra-experiment run parallelism (DESIGN.md §10): per-run RNG substreams,
// sharded execution on platform replicas, deterministic level-2 merge.  The
// contract under test is bit-identity: the conditioned package must not
// depend on the worker count, on retries, or on resume-after-abort layout.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/strings.hpp"
#include "core/campaign.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"

namespace excovery::core {
namespace {

namespace fs = std::filesystem;

using scenario::TopologyOptions;
using scenario::TwoPartyOptions;

struct TestRig {
  ExperimentDescription description;
  std::unique_ptr<SimPlatform> platform;
};

Result<TestRig> make_setup(const TwoPartyOptions& options,
                           const TopologyOptions& topology_options = {},
                           std::uint64_t platform_seed = 42) {
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       scenario::topology_for(description, topology_options));
  SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = platform_seed;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<SimPlatform> platform,
                       SimPlatform::create(description, std::move(config)));
  return TestRig{std::move(description), std::move(platform)};
}

TwoPartyOptions small_experiment(int replications = 4) {
  TwoPartyOptions options;
  options.replications = replications;
  options.environment_count = 1;
  return options;
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery_runpar_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Stable textual form of one run's complete level-2 trace, for equality
/// assertions with readable failure output.
std::string format_run(const storage::RunData& data) {
  std::string out;
  for (const auto& [node, node_data] : data.nodes) {
    out += "node " + node + "\n";
    for (const storage::RawEvent& event : node_data.events) {
      out += strings::format("  E %lld %s %s\n",
                             static_cast<long long>(event.local_time_ns),
                             event.type.c_str(),
                             event.parameter.to_text().c_str());
    }
    for (const storage::RawPacket& packet : node_data.packets) {
      out += strings::format("  P %lld %s %zu\n",
                             static_cast<long long>(packet.local_time_ns),
                             packet.src_node.c_str(), packet.data.size());
    }
    for (const storage::NamedBlob& blob : node_data.blobs) {
      out += "  B " + blob.name + " " + blob.content + "\n";
    }
    for (const storage::NamedBlob& blob : node_data.plugin_data) {
      out += "  M " + blob.name + " " + blob.content + "\n";
    }
    for (const storage::LogSegment& segment : node_data.log_segments) {
      out += "  L " + segment.text;
    }
  }
  for (const storage::SyncMeasurement& sync : data.syncs) {
    out += strings::format("sync %s off=%lld start=%lld\n", sync.node.c_str(),
                           static_cast<long long>(sync.offset_ns),
                           static_cast<long long>(sync.run_start_ns));
  }
  return out;
}

/// Row-by-row textual dump of a package database; used to report the first
/// divergence when a bit-identity assertion fails.
std::string dump_database(const storage::Database& database) {
  std::string out;
  for (const std::string& name : database.table_names()) {
    const storage::Table* table = database.table(name);
    out += "== " + name + "\n";
    for (std::size_t r = 0; r < table->row_count(); ++r) {
      storage::RowView row = table->row(r);
      for (std::size_t c = 0; c < row.size(); ++c) {
        out += row[c].to_text();
        out += " | ";
      }
      out += "\n";
    }
  }
  return out;
}

void expect_same_package(const storage::Database& expected,
                         const storage::Database& actual,
                         const char* label) {
  if (expected.serialize() == actual.serialize()) return;
  std::string lhs = dump_database(expected);
  std::string rhs = dump_database(actual);
  std::size_t pos = 0;
  while (pos < std::min(lhs.size(), rhs.size()) && lhs[pos] == rhs[pos]) ++pos;
  std::size_t from = lhs.rfind('\n', pos);
  from = from == std::string::npos ? 0 : from + 1;
  ADD_FAILURE() << label << ": packages differ near offset " << pos
                << "\n expected: "
                << lhs.substr(from, std::min<std::size_t>(400, lhs.size() - from))
                << "\n actual:   "
                << rhs.substr(from, std::min<std::size_t>(400, rhs.size() - from));
}

/// Executes the experiment on a fresh platform with the given options and
/// returns the conditioned package.
Result<storage::ExperimentPackage> run_package(const TwoPartyOptions& options,
                                               MasterOptions master_options) {
  EXC_ASSIGN_OR_RETURN(TestRig rig, make_setup(options));
  ExperiMaster master(rig.description, *rig.platform,
                      std::move(master_options));
  return master.execute();
}

// Satellite (a): a run's trace is a pure function of (experiment seed,
// run id) — executing runs 1..K-1 first must not change run K at all.
TEST(RunParallel, RunTraceIndependentOfPriorRuns) {
  TwoPartyOptions options = small_experiment(3);

  Result<TestRig> alone = make_setup(options);
  ASSERT_TRUE(alone.ok()) << alone.error().to_string();
  ExperiMaster master_alone(alone.value().description,
                            *alone.value().platform);
  ASSERT_EQ(master_alone.plan().runs().size(), 3u);
  ASSERT_TRUE(master_alone.execute_run(master_alone.plan().runs()[2]).ok());

  Result<TestRig> full = make_setup(options);
  ASSERT_TRUE(full.ok());
  ExperiMaster master_full(full.value().description, *full.value().platform);
  for (const RunSpec& run : master_full.plan().runs()) {
    ASSERT_TRUE(master_full.execute_run(run).ok());
  }

  storage::RunData run_alone = alone.value().platform->level2().extract_run(3);
  storage::RunData run_full = full.value().platform->level2().extract_run(3);
  std::string formatted = format_run(run_alone);
  EXPECT_FALSE(formatted.empty());
  EXPECT_EQ(formatted, format_run(run_full));
}

// Tentpole: the conditioned package is bit-identical at every worker count
// (1 = sequential on the master's platform, 4 = sharded replicas,
// 0 = hardware concurrency).
TEST(RunParallel, PackageBitIdenticalAcrossWorkerCounts) {
  TwoPartyOptions options = small_experiment(5);

  MasterOptions sequential;
  sequential.run_workers = 1;
  Result<storage::ExperimentPackage> baseline = run_package(options, sequential);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();
  EXPECT_FALSE(baseline.value().database().serialize().empty());

  for (std::size_t workers : {std::size_t{4}, std::size_t{0}}) {
    MasterOptions parallel;
    parallel.run_workers = workers;
    Result<storage::ExperimentPackage> package = run_package(options, parallel);
    ASSERT_TRUE(package.ok()) << package.error().to_string();
    expect_same_package(baseline.value().database(),
                        package.value().database(),
                        ("run_workers=" + std::to_string(workers)).c_str());
  }
}

// Satellite (d) with recovery in the mix: an aborted first attempt on one
// run (fresh RNG substream per attempt, partial data discarded) still
// converges to the sequential bytes.
TEST(RunParallel, RetriesPreserveBitIdentity) {
  TwoPartyOptions options = small_experiment(4);

  auto flaky = [](std::int64_t run_id, int attempt) {
    return run_id == 2 && attempt == 1;
  };
  MasterOptions sequential;
  sequential.run_workers = 1;
  sequential.abort_hook = flaky;
  Result<storage::ExperimentPackage> baseline = run_package(options, sequential);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  MasterOptions parallel;
  parallel.run_workers = 3;
  parallel.abort_hook = flaky;
  Result<storage::ExperimentPackage> package = run_package(options, parallel);
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  expect_same_package(baseline.value().database(), package.value().database(),
                      "flaky run_workers=3");
}

// Satellite (c): a parallel execution that aborts mid-experiment, persists
// its level-2 hierarchy, and resumes on a fresh platform yields a package
// byte-for-byte equal to an uninterrupted sequential execution.
TEST(RunParallel, ResumeAfterAbortMatchesUninterruptedSequential) {
  TwoPartyOptions options = small_experiment(5);

  // Uninterrupted sequential reference.
  MasterOptions sequential;
  sequential.run_workers = 1;
  Result<storage::ExperimentPackage> reference =
      run_package(options, sequential);
  ASSERT_TRUE(reference.ok()) << reference.error().to_string();

  // Parallel execution where run 3 fails permanently.
  TempDir dir;
  {
    Result<TestRig> rig = make_setup(options);
    ASSERT_TRUE(rig.ok());
    MasterOptions failing;
    failing.run_workers = 2;
    // Keep the attempt budget at the reference's default: run epochs are a
    // function of max_attempts_per_run, so changing it between the
    // interrupted and the resumed/uninterrupted executions would shift every
    // timestamp.
    failing.abort_hook = [](std::int64_t run_id, int) { return run_id == 3; };
    ExperiMaster master(rig.value().description, *rig.value().platform,
                        std::move(failing));
    Result<storage::ExperimentPackage> package = master.execute();
    ASSERT_FALSE(package.ok());
    EXPECT_EQ(master.aborted_attempts(), 3);
    // Runs other than 3 that were claimed before the failure are merged and
    // completed; run 3 left no partial data behind.
    for (std::int64_t done :
         rig.value().platform->level2().completed_runs()) {
      EXPECT_NE(done, 3);
    }
    ASSERT_TRUE(rig.value()
                    .platform->level2()
                    .write_to_directory(dir.path.string())
                    .ok());
  }

  // Resume on a fresh platform from the persisted hierarchy (§VII:
  // "recovers from failures by resuming aborted runs").
  Result<storage::Level2Store> loaded =
      storage::Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  rig.value().platform->level2() = std::move(loaded).value();

  int resumed_runs = 0;
  MasterOptions resume;
  resume.run_workers = 2;
  resume.progress = [&](const RunSpec&, int, bool) { ++resumed_runs; };
  ExperiMaster master(rig.value().description, *rig.value().platform,
                      std::move(resume));
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_GE(resumed_runs, 1);  // at least run 3 was re-executed
  expect_same_package(reference.value().database(),
                      package.value().database(), "resume after abort");
}

// Same resume scenario through the sequential path: the re-executed middle
// run must be spliced back into run-id order, not appended.
TEST(RunParallel, SequentialResumeSplicesMiddleRun) {
  TwoPartyOptions options = small_experiment(4);

  MasterOptions sequential;
  sequential.run_workers = 1;
  Result<storage::ExperimentPackage> reference =
      run_package(options, sequential);
  ASSERT_TRUE(reference.ok());

  // Complete runs 1, 2 and 4 out of order on one platform, then resume.
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  {
    ExperiMaster first(rig.value().description, *rig.value().platform);
    const std::vector<RunSpec>& runs = first.plan().runs();
    ASSERT_TRUE(first.execute_run(runs[0]).ok());
    ASSERT_TRUE(first.execute_run(runs[1]).ok());
    ASSERT_TRUE(first.execute_run(runs[3]).ok());
  }
  ExperiMaster resumed(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = resumed.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_EQ(package.value().run_ids(),
            (std::vector<std::int64_t>{1, 2, 3, 4}));
  expect_same_package(reference.value().database(),
                      package.value().database(), "sequential resume");
}

// Satellite (b): campaign- and run-level parallelism share one pool without
// deadlocking, and the progress callback is serialized (a plain counter
// with no locking must come out exact).
TEST(RunParallel, CampaignNestingSharesPoolWithoutDeadlock) {
  TwoPartyOptions options = small_experiment(3);
  Result<ExperimentDescription> description = scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());

  std::vector<CampaignEntry> entries;
  for (int i = 0; i < 3; ++i) {
    CampaignEntry entry;
    entry.id = "exp" + std::to_string(i);
    entry.description = description.value();
    Result<net::Topology> topology =
        scenario::topology_for(entry.description, {});
    ASSERT_TRUE(topology.ok());
    entry.platform.topology = std::move(topology).value();
    entry.platform.seed = 100 + static_cast<std::uint64_t>(i);
    entry.master.run_workers = 2;  // nested: run workers ride the pool
    entries.push_back(std::move(entry));
  }

  int progress_calls = 0;  // unsynchronized on purpose: callback contract
  CampaignOptions campaign;
  campaign.workers = 2;
  campaign.progress = [&](const std::string&, bool ok) {
    ++progress_calls;
    EXPECT_TRUE(ok);
  };
  std::vector<CampaignOutcome> outcomes =
      run_campaign(entries, campaign);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(progress_calls, 3);

  // Each outcome is bit-identical to running that entry's master alone.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(outcomes[i].package.ok())
        << outcomes[i].package.error().to_string();
    Result<net::Topology> topology =
        scenario::topology_for(description.value(), {});
    ASSERT_TRUE(topology.ok());
    SimPlatformConfig config;
    config.topology = std::move(topology).value();
    config.seed = 100 + static_cast<std::uint64_t>(i);
    Result<std::unique_ptr<SimPlatform>> platform =
        SimPlatform::create(description.value(), std::move(config));
    ASSERT_TRUE(platform.ok());
    ExperiMaster master(description.value(), *platform.value());
    Result<storage::ExperimentPackage> package = master.execute();
    ASSERT_TRUE(package.ok());
    EXPECT_EQ(package.value().database().serialize(),
              outcomes[i].package.value().database().serialize())
        << outcomes[i].id;
  }
}

// Master-level progress is serialized and reports every attempt exactly
// once even when runs execute on several workers.
TEST(RunParallel, MasterProgressSerializedUnderParallelism) {
  TwoPartyOptions options = small_experiment(6);
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());

  int calls = 0;  // unsynchronized on purpose
  std::atomic<int> concurrent{0};
  bool overlapped = false;
  MasterOptions master_options;
  master_options.run_workers = 3;
  master_options.progress = [&](const RunSpec&, int attempt, bool ok) {
    if (concurrent.fetch_add(1) != 0) overlapped = true;
    ++calls;
    EXPECT_EQ(attempt, 1);
    EXPECT_TRUE(ok);
    concurrent.fetch_sub(1);
  };
  ExperiMaster master(rig.value().description, *rig.value().platform,
                      std::move(master_options));
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_EQ(calls, 6);
  EXPECT_FALSE(overlapped);
}

// The cheap replica constructor reproduces the master's platform exactly:
// a replica executing run K records the same trace the master would.
TEST(RunParallel, ReplicaReproducesMasterTrace) {
  TwoPartyOptions options = small_experiment(2);
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  SimPlatform& original = *rig.value().platform;

  Result<std::unique_ptr<SimPlatform>> replica =
      original.replicate(rig.value().description);
  ASSERT_TRUE(replica.ok()) << replica.error().to_string();

  ExperiMaster on_original(rig.value().description, original);
  ASSERT_TRUE(on_original.execute_run(on_original.plan().runs()[1]).ok());
  ExperiMaster on_replica(rig.value().description, *replica.value());
  ASSERT_TRUE(on_replica.execute_run(on_replica.plan().runs()[1]).ok());

  EXPECT_EQ(format_run(original.level2().extract_run(2)),
            format_run(replica.value()->level2().extract_run(2)));
}

}  // namespace
}  // namespace excovery::core
