file(REMOVE_RECURSE
  "CMakeFiles/bench_case_mesh.dir/bench_case_mesh.cpp.o"
  "CMakeFiles/bench_case_mesh.dir/bench_case_mesh.cpp.o.d"
  "bench_case_mesh"
  "bench_case_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
