// Conditioning: level 2 -> level 3.
//
// §IV-F: "data are conditioned by first evaluating the synchronization
// measurements taken during the experiment and unifying the time base of
// all second level measurements.  Then, the event list and captured packets
// are split up into single entries.  Data from the second level plus the
// experiment description are then stored into a single package."
//
// The time-base transformation per (run, node):
//     common_time = local_time - estimated_offset(run, node)
// with the offset estimates produced by the pre-run time-sync measurement.
//
// Conditioning is parallel across nodes: each NodeStore builds its rows
// into a private shard (offset estimates are hoisted into a per-(run, node)
// cache first), and shards are merged into the package sequentially in
// node-name order — so the output is bit-identical to a sequential pass
// regardless of worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "storage/level2.hpp"
#include "storage/package.hpp"

namespace excovery::storage {

/// Wall-clock timing callback for condition(): called once per phase with
/// the phase name ("build_shards", "merge") and its duration.  Purely
/// observational — the package bytes do not depend on it being set.
using ConditioningTimingHook =
    std::function<void(std::string_view phase, std::int64_t wall_ns)>;

struct ConditioningOptions {
  std::string experiment_name = "experiment";
  std::string comment;
  /// Only condition runs marked complete in the level-2 store (incomplete
  /// runs will be resumed, not stored).
  bool completed_runs_only = true;
  /// Worker threads for the per-node shard build: 0 = hardware
  /// concurrency, 1 = fully sequential.  The conditioned package is
  /// identical for every value.
  std::size_t workers = 0;
  /// Optional per-phase wall timing (see ConditioningTimingHook).
  ConditioningTimingHook timing_hook;
};

/// Map a local timestamp to the common time base given the node's estimated
/// clock offset (both in nanoseconds); returns seconds on the reference
/// timeline.
double to_common_time(std::int64_t local_time_ns, std::int64_t offset_ns);

/// Build the level-3 package from a level-2 store and the experiment
/// description document.
Result<ExperimentPackage> condition(const Level2Store& level2,
                                    const std::string& description_xml,
                                    const ConditioningOptions& options = {});

}  // namespace excovery::storage
