// Topic-based publish/subscribe bus.
//
// ExCovery's flow control (`wait_for_event`, §IV-C2) is built on observing
// events by name, origin and parameters.  The bus carries *framework*
// events: process-interpreter waits subscribe here, action implementations
// and protocol stacks publish here.  (Network packets do NOT travel on this
// bus; they go through the network simulator.)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/value.hpp"
#include "sim/time.hpp"

namespace excovery::sim {

/// An occurrence of a named event at a node.
struct BusEvent {
  SimTime time;            ///< global (reference) time of occurrence
  std::string node;        ///< originating node identifier
  std::string name;        ///< event type, e.g. "sd_service_add"
  Value parameter;         ///< optional parameter (service id, run id, ...)
};

/// Subscription handle.
class SubscriptionHandle {
 public:
  SubscriptionHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class EventBus;
  explicit SubscriptionHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Synchronous pub/sub with wildcard subscription.  Callbacks run inline at
/// publish time (within the discrete-event step), preserving determinism.
/// Subscribers added or removed during a publish take effect for the next
/// publish.
class EventBus {
 public:
  using Callback = std::function<void(const BusEvent&)>;

  /// Subscribe to events with a given name; empty name = all events.
  SubscriptionHandle subscribe(std::string name, Callback fn);
  void unsubscribe(SubscriptionHandle handle);

  void publish(const BusEvent& event);

  /// Number of events published so far.
  std::uint64_t published() const noexcept { return published_; }

 private:
  struct Subscriber {
    std::uint64_t id;
    std::string name;  // empty = wildcard
    Callback fn;
    bool removed = false;
  };

  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
  std::vector<Subscriber> subscribers_;
  int publish_depth_ = 0;
  bool needs_compaction_ = false;
};

}  // namespace excovery::sim
