// Shortest-path routing over a Topology.
//
// The DES testbed runs mesh routing protocols below the experiment traffic;
// the simulator substitutes precomputed min-hop routing (BFS all-pairs with
// deterministic tie-breaking on lower node id).  `hop_count` also serves the
// topology measurement of §IV-B4, taken before and after each experiment.
//
// Link churn (dynamic-world faults, DESIGN.md §12) toggles individual links
// up and down at high frequency; `set_link_enabled` repairs the table
// incrementally, recomputing only the sources whose BFS tree can actually
// change, and is guaranteed to produce the same table as a full `rebuild`
// over the reduced graph (property-tested).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "net/topology.hpp"

namespace excovery::net {

/// Normalised (min, max) endpoint pair identifying an undirected link.
using LinkKey = std::pair<NodeId, NodeId>;

inline LinkKey link_key(NodeId a, NodeId b) noexcept {
  return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

class RoutingTable {
 public:
  /// Build next-hop tables for the given topology.
  explicit RoutingTable(const Topology& topology);

  /// Recompute after topology/link changes.
  void rebuild(const Topology& topology);

  /// Recompute, treating every link in `disabled` as absent.  Used for bulk
  /// partition activation/heal where many links toggle at once.
  void rebuild(const Topology& topology, const std::set<LinkKey>& disabled);

  /// Incrementally enable/disable one link.  The link must exist in the
  /// topology the table was last rebuilt from.  Recomputes only the BFS
  /// sources whose distances or parent trees can change; the result is
  /// bit-identical to a full rebuild over the same reduced graph.
  void set_link_enabled(NodeId a, NodeId b, bool enabled);

  /// Next hop from `from` toward `to`; kInvalidNode if unreachable or from==to.
  NodeId next_hop(NodeId from, NodeId to) const;

  /// Hop count between nodes; -1 if unreachable, 0 if identical.
  int hop_count(NodeId from, NodeId to) const;

  /// Full path from `from` to `to` including both endpoints; empty if
  /// unreachable.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  std::size_t node_count() const noexcept { return size_; }

 private:
  std::size_t index(NodeId from, NodeId to) const noexcept {
    return static_cast<std::size_t>(from) * size_ + to;
  }

  /// Rebuild the sorted adjacency lists from `topology`, skipping links in
  /// `disabled` (may be null).
  void build_adjacency(const Topology& topology,
                       const std::set<LinkKey>* disabled);

  /// Recompute the hops_/next_hop_ rows of one source from the current
  /// adjacency lists.
  void bfs_from(NodeId source);

  std::size_t size_ = 0;
  std::vector<NodeId> next_hop_;  ///< size_ x size_ matrix
  std::vector<std::int16_t> hops_;

  // BFS scratch, reused across sources and across rebuilds: `rebuild` runs
  // on every set_link_model during environment manipulations, so it must
  // not reallocate its working set each time.  The adjacency lists persist
  // between calls so `set_link_enabled` can patch them in place.
  std::vector<std::vector<NodeId>> scratch_adjacency_;
  std::vector<NodeId> scratch_parent_;
  std::vector<std::int16_t> scratch_dist_;
  std::vector<NodeId> scratch_frontier_;  ///< flat FIFO (head index scans)
};

}  // namespace excovery::net
