// Arena-backed XML document object model.
//
// ExCovery's abstract experiment description is an XML document (§IV-C of
// the paper; Figures 4-10 show fragments) and every answer-relevant byte —
// descriptions, XML-RPC control messages, the canonical form feeding
// campaign_digest — flows through this model.  The DOM is therefore built
// for zero-copy operation (DESIGN.md §15):
//
//  * Every node (Element, Attribute, TextSegment) is bump-allocated from a
//    per-document Arena and freed all at once when the Document dies.
//    Nodes are trivially destructible; the arena never runs destructors.
//  * Element and attribute names are interned in a per-document pool, so a
//    thousand <level> elements share one copy of the bytes.
//  * Text segments and attribute values are std::string_view slices.  When
//    a document comes from parse(), they reference the retained input
//    buffer in-situ; mutation APIs copy their inputs into the arena.
//
// Lifetime contract: everything reachable from a Document — element
// pointers, name/attr/text views — is valid exactly as long as that
// Document (moves included: the backing store is held by pointer and never
// relocates).  Nodes cannot outlive or migrate between documents.
// Namespaces and DTDs are out of scope.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace excovery::xml {

class Document;
class Element;
namespace detail {
class NodeFactory;
}

/// Whitespace set used when trimming text content (matches strings::trim).
inline constexpr std::string_view kSpaceChars = " \t\n\r\f\v";

/// Chunked bump allocator.  Allocation is a pointer increment; memory is
/// released only when the arena is destroyed.  Only trivially destructible
/// types may live here.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align) {
    std::size_t at = (used_ + (align - 1)) & ~(align - 1);
    if (at + size > capacity_) return allocate_slow(size, align);
    used_ = at + size;
    return current_ + at;
  }

  /// Copy bytes into the arena and return a view of the stable copy.
  std::string_view store(std::string_view bytes) {
    if (bytes.empty()) return {};
    char* p = static_cast<char*>(allocate(bytes.size(), 1));
    std::memcpy(p, bytes.data(), bytes.size());
    return {p, bytes.size()};
  }

  /// Total bytes handed out (for stats and benchmarks).
  std::size_t bytes_used() const noexcept { return retired_ + used_; }

 private:
  void* allocate_slow(std::size_t size, std::size_t align);

  char* current_ = nullptr;
  std::size_t used_ = 0;
  std::size_t capacity_ = 0;
  std::size_t retired_ = 0;  ///< bytes used in full chunks
  std::vector<std::unique_ptr<char[]>> chunks_;
};

/// One attribute (name="value").  An intrusive singly-linked list node;
/// `next` is managed by the owning Element.
struct Attribute {
  std::string_view name;   ///< interned in the document's name pool
  std::string_view value;  ///< in-situ or arena-resident bytes
  const Attribute* next = nullptr;
};

/// One run of character data, in document order between child elements.
/// The trim bounds are computed once when the segment is filled in, so the
/// serialisation hot path never re-scans whitespace-only runs.
struct TextSegment {
  std::string_view text;
  const TextSegment* next = nullptr;
  /// Index of the first non-space byte, or npos for all-whitespace text.
  std::size_t first_ns = std::string_view::npos;
  /// One past the last non-space byte (0 for all-whitespace text).
  std::size_t last_ns = 0;

  /// Assign the text and cache its trim bounds.
  void set(std::string_view value) noexcept {
    text = value;
    first_ns = value.find_first_not_of(kSpaceChars);
    last_ns =
        first_ns == std::string_view::npos
            ? 0
            : value.find_last_not_of(kSpaceChars) + 1;
  }
};

/// Backing store of one document: arena, interned-name pool, and the
/// retained parse input.  Heap-allocated and address-stable so nodes can
/// point at it across Document moves.
struct DocCore {
  Arena arena;
  std::string source;  ///< retained parse input; empty for built documents

  /// Intern a name.  `stable` promises the caller's bytes outlive the
  /// document (the parser's in-situ views); otherwise the first occurrence
  /// is copied into the arena.
  std::string_view intern(std::string_view name, bool stable = false);

 private:
  void rehash();
  std::vector<std::string_view> slots_;  ///< open addressing, empty = free
  std::size_t count_ = 0;
};

/// Forward iteration over an element's attributes.
class AttrRange {
 public:
  class iterator {
   public:
    explicit iterator(const Attribute* a) noexcept : a_(a) {}
    const Attribute& operator*() const noexcept { return *a_; }
    const Attribute* operator->() const noexcept { return a_; }
    iterator& operator++() noexcept {
      a_ = a_->next;
      return *this;
    }
    bool operator==(const iterator& o) const noexcept { return a_ == o.a_; }
    bool operator!=(const iterator& o) const noexcept { return a_ != o.a_; }

   private:
    const Attribute* a_;
  };

  explicit AttrRange(const Attribute* first) noexcept : first_(first) {}
  iterator begin() const noexcept { return iterator(first_); }
  iterator end() const noexcept { return iterator(nullptr); }
  bool empty() const noexcept { return first_ == nullptr; }
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Attribute* a = first_; a; a = a->next) ++n;
    return n;
  }

 private:
  const Attribute* first_;
};

/// Forward iteration over an element's raw text segments.
class TextRange {
 public:
  class iterator {
   public:
    explicit iterator(const TextSegment* s) noexcept : s_(s) {}
    std::string_view operator*() const noexcept { return s_->text; }
    iterator& operator++() noexcept {
      s_ = s_->next;
      return *this;
    }
    bool operator==(const iterator& o) const noexcept { return s_ == o.s_; }
    bool operator!=(const iterator& o) const noexcept { return s_ != o.s_; }

   private:
    const TextSegment* s_;
  };

  explicit TextRange(const TextSegment* first) noexcept : first_(first) {}
  iterator begin() const noexcept { return iterator(first_); }
  iterator end() const noexcept { return iterator(nullptr); }
  bool empty() const noexcept { return first_ == nullptr; }

 private:
  const TextSegment* first_;
};

/// Forward iteration over child elements; yields `const Element&`.
class ChildRange {
 public:
  class iterator {
   public:
    explicit iterator(const Element* e) noexcept : e_(e) {}
    const Element& operator*() const noexcept { return *e_; }
    const Element* operator->() const noexcept { return e_; }
    inline iterator& operator++() noexcept;
    bool operator==(const iterator& o) const noexcept { return e_ == o.e_; }
    bool operator!=(const iterator& o) const noexcept { return e_ != o.e_; }

   private:
    const Element* e_;
  };

  explicit ChildRange(const Element* first) noexcept : first_(first) {}
  iterator begin() const noexcept { return iterator(first_); }
  iterator end() const noexcept { return iterator(nullptr); }
  bool empty() const noexcept { return first_ == nullptr; }
  const Element* front() const noexcept { return first_; }
  inline std::size_t size() const noexcept;

 private:
  const Element* first_;
};

/// Lazy, non-allocating filter over children with a given name; yields
/// `const Element*` so range-for call sites read like the old
/// std::vector<const Element*> API.  The name must outlive the range
/// (string literals and interned names always do).
class NamedChildRange {
 public:
  class iterator {
   public:
    iterator(const Element* e, std::string_view name) noexcept
        : e_(e), name_(name) {
      skip();
    }
    const Element* operator*() const noexcept { return e_; }
    inline iterator& operator++() noexcept;
    bool operator==(const iterator& o) const noexcept { return e_ == o.e_; }
    bool operator!=(const iterator& o) const noexcept { return e_ != o.e_; }

   private:
    inline void skip() noexcept;
    const Element* e_;
    std::string_view name_;
  };

  NamedChildRange(const Element* first, std::string_view name) noexcept
      : first_(first), name_(name) {}
  iterator begin() const noexcept { return iterator(first_, name_); }
  iterator end() const noexcept { return iterator(nullptr, name_); }
  bool empty() const noexcept { return begin() == end(); }
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (iterator it = begin(); it != end(); ++it) ++n;
    return n;
  }

 private:
  const Element* first_;
  std::string_view name_;
};

/// An XML element node.  Lives in its Document's arena; create via
/// Document's root or add_child().  Mutation APIs copy their string inputs
/// into the arena, so callers never manage node lifetime.
class Element {
 public:
  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  std::string_view name() const noexcept { return name_; }
  void set_name(std::string_view name);

  // --- attributes -------------------------------------------------------
  AttrRange attributes() const noexcept { return AttrRange(first_attr_); }
  std::size_t attr_count() const noexcept {
    return attributes().size();
  }
  /// Attribute value or nullptr.
  const std::string_view* attr(std::string_view name) const noexcept;
  /// Attribute value or a default.
  std::string attr_or(std::string_view name, std::string_view fallback) const;
  /// Attribute value or error (for required attributes).
  Result<std::string> require_attr(std::string_view name) const;
  /// Set (replace or append) an attribute.
  Element& set_attr(std::string_view name, std::string_view value);
  bool has_attr(std::string_view name) const noexcept {
    return attr(name) != nullptr;
  }

  // --- children ---------------------------------------------------------
  ChildRange children() const noexcept { return ChildRange(first_child_); }
  const Element* first_child() const noexcept { return first_child_; }
  const Element* next_sibling() const noexcept { return next_sibling_; }
  bool has_children() const noexcept { return first_child_ != nullptr; }
  /// Append a new child element and return a reference to it.
  Element& add_child(std::string_view name);
  /// Append a deep copy of another element (possibly from another
  /// document) as a child.
  Element& add_subtree_copy(const Element& subtree);
  /// First child with the given name, or nullptr.
  const Element* child(std::string_view name) const noexcept;
  Element* child(std::string_view name) noexcept;
  /// First child with the given name, or error.
  Result<const Element*> require_child(std::string_view name) const;
  /// All children with the given name, in document order, without
  /// allocating: a lazy range usable directly in range-for.
  NamedChildRange children_named(std::string_view name) const noexcept {
    return NamedChildRange(first_child_, name);
  }
  /// Visitor overload for the same traversal.
  template <typename Fn>
  void for_each_child(std::string_view name, Fn&& fn) const {
    for (const Element* e = first_child_; e; e = e->next_sibling_) {
      if (e->name_ == name) fn(*e);
    }
  }
  std::size_t child_count() const noexcept { return children().size(); }

  // --- text -------------------------------------------------------------
  /// Concatenated, whitespace-trimmed character data of this element
  /// (excluding descendants).
  std::string text() const;
  /// True when the trimmed text is non-empty (no allocation).
  bool has_text() const noexcept;
  /// Raw character data segments in document order.
  TextRange text_segments() const noexcept { return TextRange(first_text_); }
  /// Invoke fn(std::string_view) for each span of the *trimmed* text, in
  /// order; the concatenation of the spans equals text().
  template <typename Fn>
  void for_each_text_span(Fn&& fn) const {
    std::size_t lo = std::string_view::npos;
    std::size_t hi = 0;
    std::size_t base = 0;
    for (const TextSegment* s = first_text_; s; s = s->next) {
      if (s->first_ns != std::string_view::npos) {
        if (lo == std::string_view::npos) lo = base + s->first_ns;
        hi = base + s->last_ns;
      }
      base += s->text.size();
    }
    if (lo == std::string_view::npos) return;
    base = 0;
    for (const TextSegment* s = first_text_; s; s = s->next) {
      std::size_t b = base;
      std::size_t e = base + s->text.size();
      base = e;
      std::size_t from = b < lo ? lo : b;
      std::size_t to = e > hi ? hi : e;
      if (from < to) fn(s->text.substr(from - b, to - from));
    }
  }
  void append_text(std::string_view text);
  /// Replace all text content.
  Element& set_text(std::string_view text);
  /// Convenience: add `<name>text</name>` child.
  Element& add_text_child(std::string_view name, std::string_view text);

  /// Structural equality (name, attributes, trimmed text, children).
  bool equals(const Element& other) const;

 private:
  friend class Document;
  friend class detail::NodeFactory;
  friend class ChildRange;
  friend class NamedChildRange;

  Element() = default;

  Attribute* find_attr(std::string_view name) noexcept;
  void link_child(Element* child) noexcept;
  void link_attr(Attribute* attr) noexcept;
  void link_text(TextSegment* segment) noexcept;

  std::string_view name_;
  DocCore* core_ = nullptr;
  Element* next_sibling_ = nullptr;
  Element* first_child_ = nullptr;
  Element* last_child_ = nullptr;
  Attribute* first_attr_ = nullptr;
  Attribute* last_attr_ = nullptr;
  TextSegment* first_text_ = nullptr;
  TextSegment* last_text_ = nullptr;
};

inline ChildRange::iterator& ChildRange::iterator::operator++() noexcept {
  e_ = e_->next_sibling_;
  return *this;
}

inline std::size_t ChildRange::size() const noexcept {
  std::size_t n = 0;
  for (const Element* e = first_; e; e = e->next_sibling_) ++n;
  return n;
}

inline void NamedChildRange::iterator::skip() noexcept {
  while (e_ && e_->name_ != name_) e_ = e_->next_sibling_;
}

inline NamedChildRange::iterator&
NamedChildRange::iterator::operator++() noexcept {
  e_ = e_->next_sibling_;
  skip();
  return *this;
}

/// A document: the owner of the arena, the name pool, the retained source
/// buffer and the element tree.  Movable (nodes stay valid), not copyable;
/// use clone() for a deep copy.
class Document {
 public:
  /// A new document with a single empty root element.
  explicit Document(std::string_view root_name);

  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  Element& root() noexcept { return *root_; }
  const Element& root() const noexcept { return *root_; }

  /// Deep copy into a fresh document (fresh arena, compacted strings).
  Document clone() const;

  /// Arena bytes consumed by this document's nodes and strings.
  std::size_t arena_bytes() const noexcept { return core_->arena.bytes_used(); }

 private:
  friend class detail::NodeFactory;

  Document();  ///< rootless; used by the parser via NodeFactory

  Element* new_element(std::string_view name, bool stable_name);

  std::unique_ptr<DocCore> core_;
  Element* root_ = nullptr;
};

static_assert(std::is_trivially_destructible_v<Attribute>);
static_assert(std::is_trivially_destructible_v<TextSegment>);
static_assert(std::is_trivially_destructible_v<Element>);

}  // namespace excovery::xml
