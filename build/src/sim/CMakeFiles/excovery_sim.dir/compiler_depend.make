# Empty compiler generated dependencies file for excovery_sim.
# This may be replaced when dependencies are built.
