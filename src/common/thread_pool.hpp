// Fixed-size worker pool used to run independent experiment replications in
// parallel (see DESIGN.md §6).  Tasks communicate only through their return
// futures — no shared mutable state — so results are identical regardless of
// worker count.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace excovery {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Enqueue a fire-and-forget task (no future).  Used for cooperative
  /// nesting: a pool task that needs helpers posts them and participates in
  /// the work itself, waiting only on a completion count — never on the
  /// helpers being scheduled — so sharing one pool between campaign- and
  /// run-level parallelism cannot deadlock.
  void post(std::function<void()> task);

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace excovery
