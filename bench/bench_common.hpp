// Shared helpers for the reproduction benches: build a scenario, run it on
// a fresh simulated platform, return the conditioned package.
#pragma once

#include <cstdio>
#include <memory>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"

namespace excovery::bench {

struct Executed {
  core::ExperimentDescription description;
  std::unique_ptr<core::SimPlatform> platform;
  storage::ExperimentPackage package;
};

inline Result<Executed> execute_description(
    core::ExperimentDescription description, std::uint64_t platform_seed = 42,
    const core::scenario::TopologyOptions& topology_options = {},
    core::MasterOptions master_options = {}) {
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description,
                                                    topology_options));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = platform_seed;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::SimPlatform> platform,
      core::SimPlatform::create(description, std::move(config)));
  core::ExperiMaster master(description, *platform,
                            std::move(master_options));
  EXC_ASSIGN_OR_RETURN(storage::ExperimentPackage package, master.execute());
  return Executed{std::move(description), std::move(platform),
                  std::move(package)};
}

inline Result<Executed> execute(
    const core::scenario::TwoPartyOptions& options,
    std::uint64_t platform_seed = 42,
    const core::scenario::TopologyOptions& topology_options = {},
    core::MasterOptions master_options = {}) {
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  return execute_description(std::move(description), platform_seed,
                             topology_options, std::move(master_options));
}

/// Abort the bench with a readable message on error.
template <typename T>
T must(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void banner(const char* artifact, const char* paper_content) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", artifact);
  std::printf("paper artifact: %s\n", paper_content);
  std::printf("==============================================================="
              "=\n");
}

}  // namespace excovery::bench
