#include "net/payload.hpp"

namespace excovery::net {

const Bytes& PayloadBuffer::empty_bytes() noexcept {
  static const Bytes empty;
  return empty;
}

}  // namespace excovery::net
