// Copy-on-write packet payload.
//
// Multicast flooding and per-node capture duplicate packets at every hop;
// with a plain byte vector each duplicate deep-copies the payload even
// though only the header/route diverge.  PayloadBuffer shares one immutable
// byte buffer across all duplicates and detaches only when someone (a
// content-modifying filter, §IV-A2) actually mutates the bytes.  Read
// access converts implicitly to `const Bytes&`, so codecs and serialisers
// observe identical bytes to the seed's `Bytes payload`.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>

#include "common/value.hpp"

namespace excovery::net {

class PayloadBuffer {
 public:
  PayloadBuffer() = default;
  PayloadBuffer(Bytes bytes)  // NOLINT: implicit, replaces a plain Bytes field
      : data_(bytes.empty() ? nullptr
                            : std::make_shared<Bytes>(std::move(bytes))) {}

  PayloadBuffer& operator=(std::initializer_list<std::uint8_t> bytes) {
    return *this = Bytes(bytes);
  }

  PayloadBuffer& operator=(Bytes bytes) {
    if (bytes.empty()) {
      data_.reset();
    } else if (data_ && data_.use_count() == 1) {
      *data_ = std::move(bytes);  // reuse the sole-owner cell
    } else {
      data_ = std::make_shared<Bytes>(std::move(bytes));
    }
    return *this;
  }

  /// Read view; shared duplicates all alias the same storage.
  const Bytes& bytes() const noexcept { return data_ ? *data_ : empty_bytes(); }
  operator const Bytes&() const noexcept { return bytes(); }  // NOLINT

  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  bool empty() const noexcept { return size() == 0; }
  const std::uint8_t* data() const noexcept {
    return data_ ? data_->data() : nullptr;
  }
  std::uint8_t operator[](std::size_t i) const { return (*data_)[i]; }

  /// Mutable access detaches from any sharers first (copy-on-write).
  std::uint8_t& operator[](std::size_t i) { return mutate()[i]; }
  Bytes& mutate() {
    if (!data_) {
      data_ = std::make_shared<Bytes>();
    } else if (data_.use_count() > 1) {
      data_ = std::make_shared<Bytes>(*data_);
    }
    return *data_;
  }

  void assign(std::size_t count, std::uint8_t value) {
    if (data_ && data_.use_count() == 1) {
      data_->assign(count, value);
    } else {
      data_ = std::make_shared<Bytes>(count, value);
    }
  }
  void clear() noexcept { data_.reset(); }

  friend bool operator==(const PayloadBuffer& a, const PayloadBuffer& b) {
    return a.data_ == b.data_ || a.bytes() == b.bytes();
  }
  friend bool operator==(const PayloadBuffer& a, const Bytes& b) {
    return a.bytes() == b;
  }

  /// Number of packets currently sharing this buffer (observability for
  /// tests and benches; 0 when empty).
  long use_count() const noexcept { return data_.use_count(); }

 private:
  static const Bytes& empty_bytes() noexcept;

  std::shared_ptr<Bytes> data_;  ///< null = empty payload
};

}  // namespace excovery::net
