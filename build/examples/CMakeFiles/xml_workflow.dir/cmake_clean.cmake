file(REMOVE_RECURSE
  "CMakeFiles/xml_workflow.dir/xml_workflow.cpp.o"
  "CMakeFiles/xml_workflow.dir/xml_workflow.cpp.o.d"
  "xml_workflow"
  "xml_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
