// Unit tests for the three-party SLP-style SD protocol (SCM/directory).
#include <gtest/gtest.h>

#include "sd/slp.hpp"

namespace excovery::sd {
namespace {

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  // Declared before `agents`: destructors emit exit events into `events`.
  std::vector<std::pair<std::string, std::string>> events;
  std::vector<std::unique_ptr<SlpAgent>> agents;

  explicit Fixture(std::size_t nodes, const SlpConfig& config = {})
      : network(scheduler, net::Topology::full_mesh(nodes), 1) {
    for (std::size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<SlpAgent>(
          network, static_cast<net::NodeId>(i), config));
      std::string name =
          network.topology().node(static_cast<net::NodeId>(i)).name;
      agents.back()->set_event_sink(
          [this, name](std::string_view event, const Value& param) {
            events.emplace_back(name,
                                std::string(event) + ":" + param.to_text());
          });
    }
  }

  ServiceInstance instance(const std::string& name) {
    ServiceInstance out;
    out.instance_name = name;
    out.type = "_t._udp";
    out.port = 80;
    return out;
  }

  int count_event(const std::string& node, const std::string& tagged) {
    int n = 0;
    for (const auto& [en, ev] : events) {
      if (en == node && ev == tagged) ++n;
    }
    return n;
  }

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  }
};

TEST(SlpAgent, ScmEmitsStartedEvent) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(0.2);
  EXPECT_EQ(fx.count_event("n0", "scm_started:n0"), 1);
  EXPECT_EQ(fx.count_event("n0", "sd_init_done:SCM"), 1);
}

TEST(SlpAgent, AgentsDiscoverScmAndEmitScmFound) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  EXPECT_EQ(fx.count_event("n1", "scm_found:n0"), 1);
  EXPECT_EQ(fx.count_event("n2", "scm_found:n0"), 1);
  EXPECT_EQ(fx.agents[1]->known_scm(),
            fx.network.topology().node(0).address);
}

TEST(SlpAgent, RegistrationEmitsScmEvent) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(0.5);
  // "scm_registration_add ... with the registering node's identification
  // as parameter" (§V).
  EXPECT_EQ(fx.count_event("n0", "scm_registration_add:n1"), 1);
  EXPECT_EQ(fx.agents[0]->registration_count(), 1u);
}

TEST(SlpAgent, PublishBeforeScmFoundRegistersOnDiscovery) {
  Fixture fx(2);
  // SM comes up first, publishes into the void, SCM appears later.
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(1.0);
  EXPECT_EQ(fx.agents[0]->registration_count(), 0u);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(6.0);  // SCM heartbeat or backoff query finds it
  EXPECT_EQ(fx.agents[0]->registration_count(), 1u);
}

TEST(SlpAgent, DirectedDiscoveryFindsRegisteredService) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(1.0);
  ASSERT_TRUE(fx.agents[2]->start_search("_t._udp").ok());
  fx.run_for(1.0);
  EXPECT_EQ(fx.count_event("n2", "sd_service_add:svc"), 1);
  ASSERT_EQ(fx.agents[2]->discovered("_t._udp").size(), 1u);
  EXPECT_GT(fx.agents[2]->counters().directed_queries_sent, 0u);
  EXPECT_GT(fx.agents[0]->counters().directed_replies_sent, 0u);
}

TEST(SlpAgent, PollingPicksUpLateRegistrations) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  // Search first, publish later: the poll loop must pick it up.
  ASSERT_TRUE(fx.agents[2]->start_search("_t._udp").ok());
  fx.run_for(1.0);
  EXPECT_TRUE(fx.agents[2]->discovered("_t._udp").empty());
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(4.0);
  EXPECT_EQ(fx.count_event("n2", "sd_service_add:svc"), 1);
}

TEST(SlpAgent, DeregistrationRemovesService) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(1.0);
  ASSERT_TRUE(fx.agents[1]->stop_publish("svc").ok());
  fx.run_for(1.0);
  EXPECT_EQ(fx.count_event("n0", "scm_registration_del:n1"), 1);
  EXPECT_EQ(fx.agents[0]->registration_count(), 0u);
}

TEST(SlpAgent, LeaseExpiresWithoutRenewal) {
  SlpConfig config;
  config.lease_seconds = 4;
  Fixture fx(2, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(0.5);
  ASSERT_EQ(fx.agents[0]->registration_count(), 1u);
  // Kill the SM abruptly: cut its transmit path first so the destructor's
  // graceful deregistration cannot reach the SCM, then destroy it.  No
  // dereg, no renewals -> the lease must expire.
  fx.network.set_interface_up(1, net::Direction::kTransmit, false);
  fx.agents[1].reset();
  fx.run_for(10.0);
  EXPECT_EQ(fx.agents[0]->registration_count(), 0u);
  EXPECT_GT(fx.agents[0]->counters().registrations_expired, 0u);
  EXPECT_GE(fx.count_event("n0", "scm_registration_del:n1"), 1);
}

TEST(SlpAgent, RenewalKeepsRegistrationAlive) {
  SlpConfig config;
  config.lease_seconds = 4;
  Fixture fx(2, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(20.0);  // several lease periods
  EXPECT_EQ(fx.agents[0]->registration_count(), 1u);
  EXPECT_GT(fx.agents[1]->counters().renewals_sent, 3u);
  EXPECT_EQ(fx.agents[0]->counters().registrations_expired, 0u);
}

TEST(SlpAgent, ScmLossDetectedAndRediscovered) {
  SlpConfig config;
  config.scm_timeout = sim::SimDuration::from_seconds(8);
  Fixture fx(3, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->known_scm().has_value());
  // SCM dies silently.
  fx.agents[0].reset();
  fx.run_for(20.0);
  EXPECT_FALSE(fx.agents[1]->known_scm().has_value());
  // A new SCM on another node is found again.
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(10.0);
  ASSERT_TRUE(fx.agents[1]->known_scm().has_value());
  EXPECT_EQ(*fx.agents[1]->known_scm(),
            fx.network.topology().node(2).address);
}

TEST(SlpAgent, UpdatePublicationReRegistersNewVersion) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[2]->start_search("_t._udp").ok());
  fx.run_for(3.0);

  ServiceInstance updated = fx.instance("svc");
  updated.attributes["v"] = "2";
  ASSERT_TRUE(fx.agents[1]->update_publication(updated).ok());
  fx.run_for(4.0);
  EXPECT_EQ(fx.count_event("n0", "scm_registration_upd:n1"), 1);
  std::vector<ServiceInstance> found = fx.agents[2]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attributes.at("v"), "2");
}

TEST(SlpAgent, ScmDoesNotSearch) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(0.2);
  EXPECT_FALSE(fx.agents[0]->start_search("_t._udp").ok());
}

TEST(SlpAgent, ExitDeregistersGracefully) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(0.5);
  ASSERT_EQ(fx.agents[0]->registration_count(), 1u);
  ASSERT_TRUE(fx.agents[1]->exit().ok());
  fx.run_for(0.5);
  EXPECT_EQ(fx.agents[0]->registration_count(), 0u);
  EXPECT_EQ(fx.count_event("n1", "sd_exit_done:"), 1);
}

TEST(SlpAgent, LeaseParameterFromInitParams) {
  Fixture fx(1);
  ValueMap params;
  params["lease_seconds"] = Value{120};
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, params).ok());
  ValueMap bad;
  bad["lease_seconds"] = Value{-5};
  Fixture fx2(1);
  EXPECT_FALSE(fx2.agents[0]->init(SdRole::kServiceManager, bad).ok());
}

}  // namespace
}  // namespace excovery::sd
