// Shortest-path routing over a Topology.
//
// The DES testbed runs mesh routing protocols below the experiment traffic;
// the simulator substitutes precomputed min-hop routing (BFS all-pairs with
// deterministic tie-breaking on lower node id).  `hop_count` also serves the
// topology measurement of §IV-B4, taken before and after each experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace excovery::net {

class RoutingTable {
 public:
  /// Build next-hop tables for the given topology.
  explicit RoutingTable(const Topology& topology);

  /// Recompute after topology/link changes.
  void rebuild(const Topology& topology);

  /// Next hop from `from` toward `to`; kInvalidNode if unreachable or from==to.
  NodeId next_hop(NodeId from, NodeId to) const;

  /// Hop count between nodes; -1 if unreachable, 0 if identical.
  int hop_count(NodeId from, NodeId to) const;

  /// Full path from `from` to `to` including both endpoints; empty if
  /// unreachable.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  std::size_t node_count() const noexcept { return size_; }

 private:
  std::size_t index(NodeId from, NodeId to) const noexcept {
    return static_cast<std::size_t>(from) * size_ + to;
  }

  std::size_t size_ = 0;
  std::vector<NodeId> next_hop_;  ///< size_ x size_ matrix
  std::vector<std::int16_t> hops_;

  // BFS scratch, reused across sources and across rebuilds: `rebuild` runs
  // on every set_link_model during environment manipulations, so it must
  // not reallocate its working set each time.
  std::vector<std::vector<NodeId>> scratch_adjacency_;
  std::vector<NodeId> scratch_parent_;
  std::vector<std::int16_t> scratch_dist_;
  std::vector<NodeId> scratch_frontier_;  ///< flat FIFO (head index scans)
};

}  // namespace excovery::net
