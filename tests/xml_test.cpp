// Unit tests for the XML module: DOM, parser, writer, selection, schema.
#include <gtest/gtest.h>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/schema.hpp"
#include "xml/select.hpp"
#include "xml/writer.hpp"

namespace excovery::xml {
namespace {

// ---- parser ------------------------------------------------------------------

TEST(XmlParser, SimpleElement) {
  Result<ElementPtr> root = parse_element("<a/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->name(), "a");
  EXPECT_TRUE(root.value()->children().empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  Result<ElementPtr> root =
      parse_element(R"(<node id="A" kind='actor'/>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root.value()->attr("id"), "A");
  EXPECT_EQ(*root.value()->attr("kind"), "actor");
  EXPECT_EQ(root.value()->attr("missing"), nullptr);
}

TEST(XmlParser, NestedChildrenAndText) {
  Result<ElementPtr> root = parse_element(
      "<factor id=\"f\"><levels><level>5</level><level>20</level>"
      "</levels></factor>");
  ASSERT_TRUE(root.ok());
  const Element* levels = root.value()->child("levels");
  ASSERT_NE(levels, nullptr);
  std::vector<const Element*> level_nodes = levels->children_named("level");
  ASSERT_EQ(level_nodes.size(), 2u);
  EXPECT_EQ(level_nodes[0]->text(), "5");
  EXPECT_EQ(level_nodes[1]->text(), "20");
}

TEST(XmlParser, EntityDecoding) {
  Result<ElementPtr> root =
      parse_element("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root.value()->attr("a"), "<&>");
  EXPECT_EQ(root.value()->text(), "\"x' AB");
}

TEST(XmlParser, CdataPreserved) {
  Result<ElementPtr> root =
      parse_element("<t><![CDATA[a < b && c > d]]></t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->text(), "a < b && c > d");
}

TEST(XmlParser, CommentsAndPisSkipped) {
  Result<ElementPtr> root = parse_element(
      "<?xml version=\"1.0\"?><!-- hello --><t><!-- inner -->x<?pi y?></t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->text(), "x");
}

TEST(XmlParser, MismatchedTagIsError) {
  Result<ElementPtr> root = parse_element("<a><b></a></b>");
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code(), ErrorCode::kParse);
}

TEST(XmlParser, ErrorsCarryPosition) {
  Result<ElementPtr> root = parse_element("<a>\n<b attr></b></a>");
  ASSERT_FALSE(root.ok());
  EXPECT_NE(root.error().message().find("line 2"), std::string::npos);
}

TEST(XmlParser, DuplicateAttributeRejected) {
  EXPECT_FALSE(parse_element("<a x=\"1\" x=\"2\"/>").ok());
}

TEST(XmlParser, MultipleRootsRejected) {
  EXPECT_FALSE(parse("<a/><b/>").ok());
}

TEST(XmlParser, EmptyDocumentRejected) {
  EXPECT_FALSE(parse("   ").ok());
  EXPECT_FALSE(parse("<!-- only a comment -->").ok());
}

TEST(XmlParser, UnterminatedElementRejected) {
  EXPECT_FALSE(parse_element("<a><b>").ok());
}

TEST(XmlParser, DeepNestingBounded) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "<d>";
  for (int i = 0; i < 400; ++i) deep += "</d>";
  EXPECT_FALSE(parse_element(deep).ok());
}

TEST(XmlParser, Utf8CharacterReferences) {
  Result<ElementPtr> root = parse_element("<t>&#xE9;&#x4E16;</t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->text(), "\xC3\xA9\xE4\xB8\x96");
}

// ---- writer ----------------------------------------------------------------------

TEST(XmlWriter, RoundTripPreservesStructure) {
  const char* source =
      "<experiment name=\"x\"><nodelist><node id=\"A\" /><node id=\"B\" />"
      "</nodelist><note>with &lt;escapes&gt; &amp; entities</note>"
      "</experiment>";
  Result<ElementPtr> first = parse_element(source);
  ASSERT_TRUE(first.ok());
  std::string text = write(*first.value());
  Result<ElementPtr> second = parse_element(text);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value()->equals(*second.value()));
}

TEST(XmlWriter, CompactModeHasNoNewlines) {
  Element root("a");
  root.add_child("b").set_text("t");
  std::string text = write(root, {.pretty = false, .declaration = false});
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text, "<a><b>t</b></a>");
}

TEST(XmlWriter, AttributeEscaping) {
  Element root("a");
  root.set_attr("v", "x\"<&>'");
  std::string text = write(root, {.pretty = false, .declaration = false});
  Result<ElementPtr> back = parse_element(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back.value()->attr("v"), "x\"<&>'");
}

// ---- DOM helpers --------------------------------------------------------------------

TEST(XmlDom, RequireHelpers) {
  Element root("r");
  root.add_child("c").set_attr("id", "1");
  EXPECT_TRUE(root.require_child("c").ok());
  EXPECT_FALSE(root.require_child("missing").ok());
  EXPECT_TRUE(root.child("c")->require_attr("id").ok());
  EXPECT_FALSE(root.child("c")->require_attr("nope").ok());
}

TEST(XmlDom, CloneIsDeepAndEqual) {
  Result<ElementPtr> root =
      parse_element("<a x=\"1\"><b>t</b><b>u</b></a>");
  ASSERT_TRUE(root.ok());
  ElementPtr copy = root.value()->clone();
  EXPECT_TRUE(root.value()->equals(*copy));
  copy->child("b")->set_text("changed");
  EXPECT_FALSE(root.value()->equals(*copy));
}

TEST(XmlDom, AddTextChildConvenience) {
  Element root("r");
  root.add_text_child("k", "v");
  EXPECT_EQ(root.child("k")->text(), "v");
}

// ---- selection -----------------------------------------------------------------------

TEST(XmlSelect, PathNavigation) {
  Result<ElementPtr> root = parse_element(
      "<r><a><b id=\"1\">x</b><b id=\"2\">y</b></a><a><b id=\"3\">z</b></a>"
      "</r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(select_all(*root.value(), "a/b").size(), 3u);
  EXPECT_EQ(select_first(*root.value(), "a/b")->text(), "x");
  EXPECT_EQ(select_first(*root.value(), "a/b[@id=2]")->text(), "y");
  EXPECT_EQ(select_first(*root.value(), "a/b[2]")->text(), "y");
  EXPECT_EQ(select_all(*root.value(), "a/*").size(), 3u);
  EXPECT_EQ(select_first(*root.value(), "a/c"), nullptr);
  EXPECT_TRUE(select_required(*root.value(), "a/b").ok());
  EXPECT_FALSE(select_required(*root.value(), "q").ok());
}

TEST(XmlSelect, RecursiveDescent) {
  Result<ElementPtr> root = parse_element(
      "<r><x><y><leaf/></y></x><leaf/><z><leaf/></z></r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(select_all_recursive(*root.value(), "leaf").size(), 3u);
}

TEST(XmlSelect, TextOrDefault) {
  Result<ElementPtr> root = parse_element("<r><k>v</k></r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(select_text_or(*root.value(), "k", "d"), "v");
  EXPECT_EQ(select_text_or(*root.value(), "missing", "d"), "d");
}

// ---- schema ----------------------------------------------------------------------------

Schema make_schema() {
  Schema schema;
  schema.element("library")
      .child("book", Occurs::at_least(1))
      .no_text();
  schema.element("book")
      .attr("isbn", /*required=*/true)
      .attr("lang", false, {"en", "de"})
      .child("title", Occurs::required())
      .child("author", Occurs::any());
  schema.element("title");
  schema.element("author");
  return schema;
}

TEST(XmlSchema, AcceptsValidDocument) {
  Result<ElementPtr> doc = parse_element(
      "<library><book isbn=\"1\" lang=\"en\"><title>t</title>"
      "<author>a</author><author>b</author></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(make_schema().validate(*doc.value()).ok());
}

TEST(XmlSchema, MissingRequiredAttribute) {
  Result<ElementPtr> doc =
      parse_element("<library><book><title>t</title></book></library>");
  ASSERT_TRUE(doc.ok());
  Status status = make_schema().validate(*doc.value());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("isbn"), std::string::npos);
}

TEST(XmlSchema, EnumeratedAttributeValue) {
  Result<ElementPtr> doc = parse_element(
      "<library><book isbn=\"1\" lang=\"fr\"><title>t</title></book>"
      "</library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(*doc.value()).ok());
}

TEST(XmlSchema, OccurrenceBounds) {
  Result<ElementPtr> no_books = parse_element("<library></library>");
  ASSERT_TRUE(no_books.ok());
  EXPECT_FALSE(make_schema().validate(*no_books.value()).ok());

  Result<ElementPtr> two_titles = parse_element(
      "<library><book isbn=\"1\"><title>a</title><title>b</title></book>"
      "</library>");
  ASSERT_TRUE(two_titles.ok());
  EXPECT_FALSE(make_schema().validate(*two_titles.value()).ok());
}

TEST(XmlSchema, UnexpectedChildRejectedUnlessOpen) {
  Result<ElementPtr> doc = parse_element(
      "<library><book isbn=\"1\"><title>t</title><extra/></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(*doc.value()).ok());

  Schema open = make_schema();
  open.element("book").open_children();
  EXPECT_TRUE(open.validate(*doc.value()).ok());
}

TEST(XmlSchema, TextPolicyEnforced) {
  Result<ElementPtr> doc = parse_element(
      "<library>oops<book isbn=\"1\"><title>t</title></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(*doc.value()).ok());
}

TEST(XmlSchema, StrictModeFlagsUnknownElements) {
  Schema schema = make_schema();
  Result<ElementPtr> doc = parse_element("<unknown/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(schema.validate(*doc.value()).ok());
  EXPECT_FALSE(schema.validate(*doc.value(), /*strict=*/true).ok());
}

TEST(XmlSchema, CollectsAllProblems) {
  Result<ElementPtr> doc = parse_element(
      "<library><book lang=\"fr\"></book></library>");
  ASSERT_TRUE(doc.ok());
  Status status = make_schema().validate(*doc.value());
  ASSERT_FALSE(status.ok());
  // Three problems: missing isbn, bad lang, missing title.
  EXPECT_NE(status.error().message().find("isbn"), std::string::npos);
  EXPECT_NE(status.error().message().find("lang"), std::string::npos);
  EXPECT_NE(status.error().message().find("title"), std::string::npos);
}

}  // namespace
}  // namespace excovery::xml
