#include "sd/slp.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace excovery::sd {

namespace {
constexpr const char* kComponent = "sd.slp";
}

SlpAgent::SlpAgent(net::Network& network, net::NodeId node,
                   const SlpConfig& config)
    : network_(network),
      node_(node),
      config_(config),
      rng_(RngFactory(config.seed ^ fnv1a64(network.topology().node(node).name))
               .stream("slp-agent")),
      cache_(network.scheduler()),
      scm_query_interval_current_(config.scm_query_interval) {
  cache_.set_listener([this](CacheChange change,
                             const ServiceInstance& instance) {
    if (searches_.find(instance.type) == searches_.end()) return;
    switch (change) {
      case CacheChange::kAdded:
        emit(events::kServiceAdd, Value{instance.instance_name});
        break;
      case CacheChange::kUpdated:
        emit(events::kServiceUpd, Value{instance.instance_name});
        break;
      case CacheChange::kRemoved:
      case CacheChange::kExpired:
        emit(events::kServiceDel, Value{instance.instance_name});
        break;
    }
  });
}

SlpAgent::~SlpAgent() {
  if (initialized_) (void)exit();
}

template <typename Fn>
void SlpAgent::schedule(sim::SimDuration delay, Fn&& fn) {
  std::uint64_t generation = generation_.value();
  network_.scheduler().schedule(
      delay, [this, alive = generation_.token(), generation,
              fn = std::forward<Fn>(fn)]() mutable {
        if (*alive != generation) return;  // agent exited or was destroyed
        fn();
      });
}

Status SlpAgent::init(SdRole role, const ValueMap& params) {
  if (initialized_) return err_state("slp agent already initialised");
  if (const auto it = params.find("lease_seconds"); it != params.end()) {
    EXC_ASSIGN_OR_RETURN(std::int64_t lease, it->second.to_int());
    if (lease <= 0) return err_invalid("lease_seconds must be positive");
    config_.lease_seconds = static_cast<std::uint32_t>(lease);
  }
  role_ = role;
  initialized_ = true;

  network_.join_group(node_, slp_multicast());
  network_.bind(node_, kSlpPort,
                [this](net::NodeId, const net::Packet& packet) {
                  on_packet(packet);
                });

  schedule(config_.startup_delay, [this] {
    if (role_ == SdRole::kServiceCacheManager) {
      // "When the SCM parameter is used, the node generates a scm_started
      // event" (§V).
      emit(events::kScmStarted,
           Value{network_.topology().node(node_).name});
      advert_heartbeat();
      expire_registrations();
    } else {
      // SU/SM: begin SCM discovery ("discoverable items such [as] scopes
      // and SCMs are discovered" during Init SD).
      schedule_scm_query(sim::SimDuration::zero());
    }
    emit(events::kInitDone, Value{to_string(role_).data()});
  });
  return {};
}

Status SlpAgent::exit() {
  if (!initialized_) return err_state("slp agent not initialised");
  // Deregister everything still published (graceful withdrawal).
  if (scm_.has_value()) {
    for (const auto& [name, publication] : published_) {
      if (!publication.registered) continue;
      SdMessage msg;
      msg.kind = MessageKind::kDeregister;
      msg.txn_id = next_txn();
      msg.service_type = publication.instance.type;
      msg.sender_name = network_.topology().node(node_).name;
      msg.records.push_back(ServiceRecord{publication.instance, 0});
      send_unicast(*scm_, msg);
    }
  }
  published_.clear();
  for (auto& [type, search] : searches_) {
    network_.scheduler().cancel(search.poll_timer);
  }
  searches_.clear();
  registrations_.clear();
  cache_.clear();
  scm_.reset();
  network_.unbind(node_, kSlpPort);
  network_.leave_group(node_, slp_multicast());
  generation_.bump();
  initialized_ = false;
  emit(events::kExitDone);
  return {};
}

void SlpAgent::crash() {
  if (!initialized_) return;
  // Ungraceful failure: no deregistrations, no exit event.  An SCM crash
  // leaves SMs/SUs holding a stale directory until the advert timeout
  // declares it lost; an SM crash leaves its registrations on the SCM
  // until their leases expire.
  published_.clear();
  for (auto& [type, search] : searches_) {
    network_.scheduler().cancel(search.poll_timer);
  }
  searches_.clear();
  registrations_.clear();
  cache_.clear();
  scm_.reset();
  network_.unbind(node_, kSlpPort);
  network_.leave_group(node_, slp_multicast());
  generation_.bump();
  initialized_ = false;
}

// ---- SCM discovery (SU/SM side) -------------------------------------------

void SlpAgent::schedule_scm_query(sim::SimDuration delay) {
  schedule(delay, [this] {
    if (scm_.has_value()) return;  // found meanwhile
    send_scm_query();
    sim::SimDuration next = scm_query_interval_current_;
    auto widened = static_cast<std::int64_t>(
        static_cast<double>(next.nanos()) * config_.scm_query_backoff);
    scm_query_interval_current_ =
        std::min(sim::SimDuration(widened), config_.scm_query_interval_max);
    schedule_scm_query(next);
  });
}

void SlpAgent::send_scm_query() {
  SdMessage query;
  query.kind = MessageKind::kScmQuery;
  query.txn_id = next_txn();
  query.sender_name = network_.topology().node(node_).name;
  counters_.scm_queries_sent++;
  send_multicast(query);
}

void SlpAgent::handle_scm_advert(const SdMessage& message, net::Address from) {
  if (role_ == SdRole::kServiceCacheManager) return;
  last_advert_ = network_.scheduler().now();
  bool is_new = !scm_.has_value() || *scm_ != from;
  if (is_new) {
    scm_ = from;
    // "SU and SM agents keep looking for SCMs and emit scm_found events
    // when a SCM has been discovered" (§V).
    emit(events::kScmFound, Value{message.sender_name});
    // Register pending publications and kick active searches immediately.
    for (const auto& [name, publication] : published_) {
      if (!publication.registered) register_publication(name);
    }
    for (const auto& [type, search] : searches_) {
      (void)search;
      poll_scm(type);
    }
  }
  // Watchdog: declare the SCM lost if adverts stop.
  schedule(config_.scm_timeout, [this] {
    if (!scm_.has_value()) return;
    sim::SimDuration silent = network_.scheduler().now() - last_advert_;
    if (silent >= config_.scm_timeout) scm_lost();
  });
}

void SlpAgent::scm_lost() {
  EXC_LOG_INFO(kComponent, "SCM lost on node "
                               << network_.topology().node(node_).name);
  scm_.reset();
  for (auto& [name, publication] : published_) publication.registered = false;
  scm_query_interval_current_ = config_.scm_query_interval;
  schedule_scm_query(sim::SimDuration::zero());
}

// ---- registration (SM side) ------------------------------------------------

void SlpAgent::register_publication(const std::string& instance_name) {
  auto it = published_.find(instance_name);
  if (it == published_.end() || !scm_.has_value()) return;
  SdMessage msg;
  msg.kind = MessageKind::kRegister;
  msg.txn_id = next_txn();
  msg.service_type = it->second.instance.type;
  msg.sender_name = network_.topology().node(node_).name;
  msg.lease_seconds = config_.lease_seconds;
  msg.records.push_back(
      ServiceRecord{it->second.instance, config_.record_ttl_seconds});
  counters_.registers_sent++;
  send_unicast(*scm_, msg);
  // Optimistic: mark registered; the ack confirms, loss is healed by the
  // half-lease renewal below.
  it->second.registered = true;
  schedule_renewal(instance_name);
}

void SlpAgent::schedule_renewal(const std::string& instance_name) {
  sim::SimDuration half_lease = sim::SimDuration::from_seconds(
      static_cast<double>(config_.lease_seconds) / 2.0);
  schedule(half_lease, [this, instance_name] {
    auto it = published_.find(instance_name);
    if (it == published_.end()) return;  // unpublished meanwhile
    if (!scm_.has_value()) {
      it->second.registered = false;
      return;
    }
    SdMessage msg;
    msg.kind = MessageKind::kRegister;
    msg.txn_id = next_txn();
    msg.service_type = it->second.instance.type;
    msg.sender_name = network_.topology().node(node_).name;
    msg.lease_seconds = config_.lease_seconds;
    msg.records.push_back(
        ServiceRecord{it->second.instance, config_.record_ttl_seconds});
    counters_.renewals_sent++;
    send_unicast(*scm_, msg);
    schedule_renewal(instance_name);
  });
}

// ---- SCM side ---------------------------------------------------------------

void SlpAgent::advert_heartbeat() {
  SdMessage advert;
  advert.kind = MessageKind::kScmAdvert;
  advert.txn_id = next_txn();
  advert.sender_name = network_.topology().node(node_).name;
  counters_.adverts_sent++;
  send_multicast(advert);
  schedule(config_.advert_interval, [this] { advert_heartbeat(); });
}

void SlpAgent::expire_registrations() {
  sim::SimTime now = network_.scheduler().now();
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    if (it->second.lease_expires <= now) {
      counters_.registrations_expired++;
      // "when a registration is revoked or changed, the respective events
      // scm_registration_del ..." — lease expiry revokes.
      emit(events::kScmRegistrationDel, Value{it->second.owner});
      it = registrations_.erase(it);
    } else {
      ++it;
    }
  }
  schedule(sim::SimDuration::from_seconds(1), [this] {
    expire_registrations();
  });
}

void SlpAgent::handle_scm_query(const SdMessage& message, net::Address from) {
  if (role_ != SdRole::kServiceCacheManager) return;
  SdMessage advert;
  advert.kind = MessageKind::kScmAdvert;
  advert.txn_id = message.txn_id;  // pair the solicited advert
  advert.sender_name = network_.topology().node(node_).name;
  counters_.adverts_sent++;
  send_unicast(from, advert);
}

void SlpAgent::handle_register(const SdMessage& message, net::Address from) {
  if (role_ != SdRole::kServiceCacheManager) return;
  for (const ServiceRecord& record : message.records) {
    const std::string& name = record.instance.instance_name;
    sim::SimTime expires =
        network_.scheduler().now() +
        sim::SimDuration::from_seconds(
            static_cast<double>(message.lease_seconds > 0
                                    ? message.lease_seconds
                                    : config_.lease_seconds));
    auto it = registrations_.find(name);
    if (it == registrations_.end()) {
      // The directory entry remembers the delivery it arrived under, so a
      // later directed reply can attribute its answer to this SCM hop.
      registrations_.emplace(name,
                             Registration{record, message.sender_name,
                                          expires, network_.lineage_ambient()});
      // "If an SM registers its service on an SCM node, a
      // scm_registration_add event is generated with the registering
      // node's identification as parameter" (§V).
      emit(events::kScmRegistrationAdd, Value{message.sender_name});
    } else {
      bool changed =
          record.instance.version > it->second.record.instance.version;
      it->second.record = record;
      it->second.lease_expires = expires;
      if (changed) {
        it->second.lineage = network_.lineage_ambient();
        emit(events::kScmRegistrationUpd, Value{message.sender_name});
      }
    }
  }
  SdMessage ack;
  ack.kind = MessageKind::kRegisterAck;
  ack.txn_id = message.txn_id;
  ack.sender_name = network_.topology().node(node_).name;
  ack.lease_seconds = config_.lease_seconds;
  send_unicast(from, ack);
}

void SlpAgent::handle_deregister(const SdMessage& message) {
  if (role_ != SdRole::kServiceCacheManager) return;
  for (const ServiceRecord& record : message.records) {
    auto it = registrations_.find(record.instance.instance_name);
    if (it == registrations_.end()) continue;
    emit(events::kScmRegistrationDel, Value{it->second.owner});
    registrations_.erase(it);
  }
}

void SlpAgent::handle_directed_query(const SdMessage& message,
                                     net::Address from) {
  if (role_ != SdRole::kServiceCacheManager) return;
  SdMessage reply;
  reply.kind = MessageKind::kDirectedReply;
  reply.txn_id = message.txn_id;
  reply.service_type = message.service_type;
  reply.sender_name = network_.topology().node(node_).name;
  for (const auto& [name, registration] : registrations_) {
    if (registration.record.instance.type == message.service_type) {
      reply.records.push_back(registration.record);
      // Side branch: the answered record descends from the registration
      // that brought it into the directory ("which SCM hop delivered").
      network_.record_lineage(sim::LineageKind::kScmHit, registration.lineage,
                              message.txn_id, node_, name);
    }
  }
  counters_.directed_replies_sent++;
  const std::uint64_t lin_answer = network_.record_lineage(
      sim::LineageKind::kAnswer, network_.lineage_ambient(), message.txn_id,
      node_, "scm_reply");
  sim::LineageScope lin_scope(network_.scheduler(), lin_answer);
  send_unicast(from, reply);
}

// ---- directed discovery (SU side) -------------------------------------------

void SlpAgent::poll_scm(const ServiceType& type) {
  if (!scm_.has_value()) return;
  auto it = searches_.find(type);
  if (it == searches_.end()) return;
  SdMessage query;
  query.kind = MessageKind::kDirectedQuery;
  query.txn_id = next_txn();
  query.service_type = type;
  query.sender_name = network_.topology().node(node_).name;
  counters_.directed_queries_sent++;
  // One directed-poll round; the next round's timer descends from it, so
  // poll rounds chain for responsiveness attribution.
  const std::uint32_t round = ++it->second.round;
  const std::uint64_t lin_query = network_.record_lineage(
      sim::LineageKind::kQuery, network_.lineage_ambient(), round, node_,
      type);
  sim::LineageScope lin_scope(network_.scheduler(), lin_query);
  send_unicast(*scm_, query);

  std::uint64_t generation = generation_.value();
  it->second.poll_timer = network_.scheduler().schedule(
      config_.poll_interval,
      [this, alive = generation_.token(), generation, type] {
        if (*alive != generation) return;
        poll_scm(type);
      });
}

void SlpAgent::handle_directed_reply(const SdMessage& message) {
  for (const ServiceRecord& record : message.records) {
    const std::uint64_t lin_store = network_.record_lineage(
        sim::LineageKind::kCacheStore, network_.lineage_ambient(), 0, node_,
        record.instance.instance_name);
    cache_.store(record, lin_store);
  }
}

// ---- SdAgent actions ---------------------------------------------------------

Status SlpAgent::start_search(const ServiceType& type) {
  if (!initialized_) return err_state("start_search before init");
  if (role_ == SdRole::kServiceCacheManager) {
    return err_state("SCM nodes do not search");
  }
  if (searches_.find(type) != searches_.end()) {
    return err_state("search for '" + type + "' already active");
  }
  searches_.emplace(type, Search{type, {}});
  // Root of this discovery's causal tree (mirrors the mdns agent).
  const std::uint64_t lin_search = network_.record_lineage(
      sim::LineageKind::kRoot, network_.lineage_ambient(), 0, node_, type);
  sim::LineageScope lin_search_scope(network_.scheduler(), lin_search);
  emit(events::kStartSearch, Value{type});
  for (const ServiceInstance& instance : cache_.instances(type)) {
    const std::uint64_t lin_hit = network_.record_lineage(
        sim::LineageKind::kCacheHit, cache_.lineage(instance.instance_name),
        0, node_, instance.instance_name);
    sim::LineageScope lin_scope(network_.scheduler(), lin_hit);
    emit(events::kServiceAdd, Value{instance.instance_name});
  }
  // Directed discovery starts as soon as an SCM is known; otherwise the
  // SCM discovery loop is already running and will kick the poll.
  poll_scm(type);
  return {};
}

Status SlpAgent::stop_search(const ServiceType& type) {
  if (!initialized_) return err_state("stop_search before init");
  auto it = searches_.find(type);
  if (it == searches_.end()) {
    return err_state("no active search for '" + type + "'");
  }
  network_.scheduler().cancel(it->second.poll_timer);
  searches_.erase(it);
  // "Includes removal of any notification request previously given to
  // SCMs" — polling simply stops.
  emit(events::kStopSearch, Value{type});
  return {};
}

Status SlpAgent::start_publish(const ServiceInstance& instance) {
  if (!initialized_) return err_state("start_publish before init");
  if (role_ != SdRole::kServiceManager) {
    return err_state("only SM nodes publish services");
  }
  if (published_.find(instance.instance_name) != published_.end()) {
    return err_state("instance '" + instance.instance_name +
                     "' already published");
  }
  Publication publication;
  publication.instance = instance;
  if (publication.instance.provider.is_unspecified()) {
    publication.instance.provider = network_.topology().node(node_).address;
  }
  std::string name = publication.instance.instance_name;
  published_.emplace(name, std::move(publication));
  emit(events::kStartPublish, Value{name});
  if (scm_.has_value()) register_publication(name);
  return {};
}

Status SlpAgent::stop_publish(const std::string& instance_name) {
  if (!initialized_) return err_state("stop_publish before init");
  auto it = published_.find(instance_name);
  if (it == published_.end()) {
    return err_state("instance '" + instance_name + "' is not published");
  }
  if (it->second.registered && scm_.has_value()) {
    SdMessage msg;
    msg.kind = MessageKind::kDeregister;
    msg.txn_id = next_txn();
    msg.service_type = it->second.instance.type;
    msg.sender_name = network_.topology().node(node_).name;
    msg.records.push_back(ServiceRecord{it->second.instance, 0});
    send_unicast(*scm_, msg);
  }
  published_.erase(it);
  emit(events::kStopPublish, Value{instance_name});
  return {};
}

Status SlpAgent::update_publication(const ServiceInstance& instance) {
  if (!initialized_) return err_state("update_publication before init");
  auto it = published_.find(instance.instance_name);
  if (it == published_.end()) {
    return err_state("instance '" + instance.instance_name +
                     "' is not published");
  }
  emit(events::kServiceUpd, Value{instance.instance_name});
  ServiceInstance updated = instance;
  if (updated.provider.is_unspecified()) {
    updated.provider = network_.topology().node(node_).address;
  }
  updated.version = it->second.instance.version + 1;
  it->second.instance = updated;
  if (scm_.has_value()) {
    SdMessage msg;
    msg.kind = MessageKind::kRegister;
    msg.txn_id = next_txn();
    msg.service_type = updated.type;
    msg.sender_name = network_.topology().node(node_).name;
    msg.lease_seconds = config_.lease_seconds;
    msg.records.push_back(ServiceRecord{updated, config_.record_ttl_seconds});
    counters_.registers_sent++;
    send_unicast(*scm_, msg);
  }
  return {};
}

std::vector<ServiceInstance> SlpAgent::discovered(
    const ServiceType& type) const {
  return cache_.instances(type);
}

// ---- transport ----------------------------------------------------------------

void SlpAgent::send_multicast(const SdMessage& message) {
  net::Packet packet;
  packet.dst = slp_multicast();
  packet.src_port = kSlpPort;
  packet.dst_port = kSlpPort;
  packet.ttl = config_.multicast_ttl;
  packet.payload = encode(message);
  Result<std::uint64_t> sent = network_.send(node_, std::move(packet));
  if (!sent.ok()) {
    EXC_LOG_WARN(kComponent, "multicast send failed: "
                                 << sent.error().to_string());
  }
}

void SlpAgent::send_unicast(net::Address to, const SdMessage& message) {
  net::Packet packet;
  packet.dst = to;
  packet.src_port = kSlpPort;
  packet.dst_port = kSlpPort;
  packet.payload = encode(message);
  Result<std::uint64_t> sent = network_.send(node_, std::move(packet));
  if (!sent.ok()) {
    EXC_LOG_WARN(kComponent,
                 "unicast send failed: " << sent.error().to_string());
  }
}

void SlpAgent::on_packet(const net::Packet& packet) {
  Result<SdMessage> decoded = decode(packet.payload);
  if (!decoded.ok()) return;
  const SdMessage& message = decoded.value();
  if (message.sender_name == network_.topology().node(node_).name) return;
  switch (message.kind) {
    case MessageKind::kScmQuery:
      handle_scm_query(message, packet.src);
      break;
    case MessageKind::kScmAdvert:
      handle_scm_advert(message, packet.src);
      break;
    case MessageKind::kRegister:
      handle_register(message, packet.src);
      break;
    case MessageKind::kRegisterAck:
      break;  // optimistic registration; ack is informational
    case MessageKind::kDeregister:
      handle_deregister(message);
      break;
    case MessageKind::kDirectedQuery:
      handle_directed_query(message, packet.src);
      break;
    case MessageKind::kDirectedReply:
      handle_directed_reply(message);
      break;
    default:
      break;  // two-party kinds are not ours
  }
}

}  // namespace excovery::sd
