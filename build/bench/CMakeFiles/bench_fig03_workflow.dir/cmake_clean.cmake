file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_workflow.dir/bench_fig03_workflow.cpp.o"
  "CMakeFiles/bench_fig03_workflow.dir/bench_fig03_workflow.cpp.o.d"
  "bench_fig03_workflow"
  "bench_fig03_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
