file(REMOVE_RECURSE
  "CMakeFiles/test_sd_mdns.dir/sd_mdns_test.cpp.o"
  "CMakeFiles/test_sd_mdns.dir/sd_mdns_test.cpp.o.d"
  "test_sd_mdns"
  "test_sd_mdns.pdb"
  "test_sd_mdns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd_mdns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
