# Empty compiler generated dependencies file for test_sd_multi.
# This may be replaced when dependencies are built.
