// NodeManager: "the central component of the nodes participating in
// experiments.  It handles remote procedure calls coming from ExperiMaster.
// Basic procedures exposed via RPC are the actions for management, fault
// injection, environment manipulation and the experiment process actions"
// (§VI-A).
//
// The SD process actions delegate to an SdAgent (the prototype delegates to
// Avahi), fault actions to the platform's FaultInjector, and every
// component signals occurrences through the event generator (the recorder).
//
// Exposed RPC methods (all parameters travel as one XML-RPC struct):
//   management:  experiment_init, experiment_exit, run_init, run_exit,
//                clock_read, event_flag, plugin_measure
//   SD process:  sd_init, sd_exit, sd_start_search, sd_stop_search,
//                sd_start_publish, sd_stop_publish, sd_update_publication
//   faults:      fault_interface_start/stop, fault_message_loss_start/stop,
//                fault_message_delay_start/stop, fault_path_loss_start/stop,
//                fault_path_delay_start/stop
//   dynamic:     fault_node_crash_start/stop, fault_node_churn_start/stop,
//                fault_link_flap_start/stop, fault_ge_loss_start/stop,
//                fault_message_duplicate_start/stop,
//                fault_message_reorder_start/stop (DESIGN.md §12)
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/log.hpp"
#include "core/recorder.hpp"
#include "faults/injector.hpp"
#include "net/network.hpp"
#include "rpc/endpoint.hpp"
#include "sd/model.hpp"

namespace excovery::core {

class SimPlatform;

/// Factory creating the node's SD agent on demand (sd_init).
using AgentFactory = std::function<std::unique_ptr<sd::SdAgent>()>;

/// Plugin measurement hook: name -> producer of measurement content.
/// Realises the paper's plugin concept ("ExCovery has a plugin concept to
/// extend these data with custom measurements on demand", §IV-B).
using PluginFn = std::function<std::string(std::int64_t run_id)>;

class NodeManager {
 public:
  NodeManager(SimPlatform& platform, std::string name, net::NodeId node_id,
              AgentFactory agent_factory);
  ~NodeManager();

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  const std::string& name() const noexcept { return name_; }
  net::NodeId node_id() const noexcept { return node_id_; }
  rpc::RpcServer& server() noexcept { return server_; }
  sd::SdAgent* agent() noexcept { return agent_.get(); }
  CapturingLog& log() noexcept { return log_; }

  /// Register a plugin measurement executed at every run_exit.
  void register_plugin(const std::string& plugin, const std::string& name,
                       PluginFn fn);

  /// Direct (non-RPC) lifecycle entry points, also reachable via RPC.
  Status experiment_init();
  Status experiment_exit();
  Status run_init(std::int64_t run_id);
  Status run_exit(std::int64_t run_id);

  /// Node crash (churn fault): the SD agent loses all soft state without
  /// goodbyes and both interfaces go down.  Idempotent.
  void crash();
  /// Restart after a crash: interfaces come back and the node's recorded
  /// discovery role (init, publications, searches) is replayed through the
  /// regular SD action path, so re-announcement/re-registration runs the
  /// protocol's normal startup machinery.  Idempotent.
  void restore();
  bool crashed() const noexcept { return crashed_; }

 private:
  void register_methods();
  Result<Value> dispatch_sd(const std::string& method, const ValueMap& params);
  Result<Value> dispatch_fault(const std::string& method,
                               const ValueMap& params);
  Status ensure_agent();
  faults::TemporalSpec temporal_from(const ValueMap& params) const;
  /// Drain this node's packet captures into its level-2 store.
  void collect_captures(std::int64_t run_id);

  SimPlatform& platform_;
  std::string name_;
  net::NodeId node_id_;
  AgentFactory agent_factory_;
  std::unique_ptr<sd::SdAgent> agent_;
  rpc::RpcServer server_;
  CapturingLog log_;
  std::int64_t current_run_ = 0;
  std::map<std::string, faults::FaultHandle> active_faults_;
  /// Replay memory for crash-restart: the raw parameters of the SD actions
  /// that shaped the node's current discovery role.  Cleared at run_init
  /// and sd_exit; consumed by restore().
  struct SdSoftState {
    bool initialized = false;
    ValueMap init_params;                      ///< includes "role"
    std::map<std::string, ValueMap> publishes; ///< instance -> params
    std::map<std::string, ValueMap> searches;  ///< type -> params
  };
  SdSoftState sd_state_;
  bool crashed_ = false;
  struct Plugin {
    std::string plugin;
    std::string name;
    PluginFn fn;
  };
  std::vector<Plugin> plugins_;
};

}  // namespace excovery::core
