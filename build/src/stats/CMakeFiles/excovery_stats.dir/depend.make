# Empty dependencies file for excovery_stats.
# This may be replaced when dependencies are built.
