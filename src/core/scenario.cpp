#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace excovery::core::scenario {

namespace {

ProcessAction action(std::string name) {
  ProcessAction a;
  a.name = std::move(name);
  return a;
}

ProcessAction& with(ProcessAction& a, std::string key, ParamValue value) {
  a.params.emplace_back(std::move(key), std::move(value));
  return a;
}

ParamValue lit(std::string text) { return ParamValue::lit(Value{std::move(text)}); }

}  // namespace

Result<ExperimentDescription> two_party_sd(const TwoPartyOptions& options) {
  if (options.sm_count < 1 || options.su_count < 1) {
    return err_invalid("scenario needs at least one SM and one SU");
  }
  ExperimentDescription description;
  description.name = "sd-" + options.protocol + "-" + options.architecture;
  description.seed = options.seed;
  description.replications = options.replications;
  description.replication_factor_id = "fact_replication_id";
  description.info_params["sd_architecture"] = Value{options.architecture};
  description.info_params["sd_protocol"] = Value{options.protocol};
  description.info_params["sd_comm"] = Value{"active"};
  description.info_params["sd_service_type"] = Value{options.service_type};

  // Abstract nodes and identity platform mapping (as in Fig. 8's A -> A).
  auto add_nodes = [&](const char* prefix, int count, ValueArray& instances) {
    for (int i = 0; i < count; ++i) {
      std::string id = strings::format("%s%d", prefix, i);
      description.abstract_nodes.push_back(id);
      description.platform.actor_nodes.push_back(PlatformNode{id, id, ""});
      instances.emplace_back(id);
    }
  };
  ValueArray sm_instances;
  ValueArray su_instances;
  ValueArray scm_instances;
  add_nodes("SM", options.sm_count, sm_instances);
  add_nodes("SU", options.su_count, su_instances);
  add_nodes("SCM", options.scm_count, scm_instances);
  for (int i = 0; i < options.environment_count; ++i) {
    description.platform.environment_nodes.push_back(
        PlatformNode{strings::format("ENV%d", i), "", ""});
  }

  // Actor map factor (blocking, per Fig. 5).
  Factor nodes_factor;
  nodes_factor.id = "fact_nodes";
  nodes_factor.type = "actor_node_map";
  nodes_factor.usage = FactorUsage::kBlocking;
  ValueMap actor_map;
  actor_map.emplace("actor0", Value{sm_instances});
  actor_map.emplace("actor1", Value{su_instances});
  if (options.scm_count > 0) {
    actor_map.emplace("actor2", Value{scm_instances});
  }
  nodes_factor.levels.push_back(Value{std::move(actor_map)});
  description.node_factor_id = nodes_factor.id;
  description.factors.push_back(std::move(nodes_factor));

  bool with_traffic =
      !options.pairs_levels.empty() && !options.bw_levels.empty();
  if (with_traffic) {
    Factor pairs_factor;
    pairs_factor.id = "fact_pairs";
    pairs_factor.type = "int";
    pairs_factor.usage = FactorUsage::kRandom;
    for (std::int64_t level : options.pairs_levels) {
      pairs_factor.levels.emplace_back(level);
    }
    description.factors.push_back(std::move(pairs_factor));

    Factor bw_factor;
    bw_factor.id = "fact_bw";
    bw_factor.type = "int";
    bw_factor.usage = FactorUsage::kConstant;
    for (std::int64_t level : options.bw_levels) {
      bw_factor.levels.emplace_back(level);
    }
    description.factors.push_back(std::move(bw_factor));
  }

  bool with_loss = !options.loss_levels.empty();
  if (with_loss) {
    Factor loss_factor;
    loss_factor.id = "fact_loss";
    loss_factor.type = "double";
    loss_factor.usage = FactorUsage::kConstant;
    for (double level : options.loss_levels) {
      loss_factor.levels.emplace_back(level);
    }
    description.factors.push_back(std::move(loss_factor));
  }

  // ---- SM process (Fig. 9) ------------------------------------------------
  {
    ActorProcess sm;
    sm.actor_id = "actor0";
    sm.name = "SM";
    ProcessAction init = action("sd_init");
    with(init, "role", lit("SM"));
    sm.actions.push_back(std::move(init));
    ProcessAction publish = action("sd_start_publish");
    with(publish, "type", lit(options.service_type));
    sm.actions.push_back(std::move(publish));
    ProcessAction wait_done = action("wait_for_event");
    with(wait_done, "event_dependency", lit("done"));
    with(wait_done, "from_dependency",
         ParamValue::nodes(NodeSetRef{"actor1", "all"}));
    sm.actions.push_back(std::move(wait_done));
    ProcessAction unpublish = action("sd_stop_publish");
    with(unpublish, "type", lit(options.service_type));
    sm.actions.push_back(std::move(unpublish));
    sm.actions.push_back(action("sd_exit"));
    description.actor_processes.push_back(std::move(sm));
  }

  // ---- SU process (Fig. 10) -----------------------------------------------
  {
    ActorProcess su;
    su.actor_id = "actor1";
    su.name = "SU";
    ProcessAction wait_publish = action("wait_for_event");
    with(wait_publish, "from_dependency",
         ParamValue::nodes(NodeSetRef{"actor0", "all"}));
    with(wait_publish, "event_dependency", lit("sd_start_publish"));
    su.actions.push_back(std::move(wait_publish));
    if (with_traffic) {
      ProcessAction wait_ready = action("wait_for_event");
      with(wait_ready, "event_dependency", lit("ready_to_init"));
      su.actions.push_back(std::move(wait_ready));
    }
    if (options.su_start_delay_s > 0.0) {
      ProcessAction delay = action("wait_for_time");
      with(delay, "time",
           lit(strings::format_double(options.su_start_delay_s)));
      su.actions.push_back(std::move(delay));
    }
    ProcessAction init = action("sd_init");
    with(init, "role", lit("SU"));
    su.actions.push_back(std::move(init));
    su.actions.push_back(action("wait_marker"));
    ProcessAction search = action("sd_start_search");
    with(search, "type", lit(options.service_type));
    su.actions.push_back(std::move(search));
    ProcessAction wait_found = action("wait_for_event");
    with(wait_found, "from_dependency",
         ParamValue::nodes(NodeSetRef{"actor1", "all"}));
    with(wait_found, "event_dependency", lit("sd_service_add"));
    with(wait_found, "param_dependency",
         ParamValue::nodes(NodeSetRef{"actor0", "all"}));
    with(wait_found, "timeout",
         lit(strings::format_double(options.deadline_s)));
    su.actions.push_back(std::move(wait_found));
    ProcessAction done = action("event_flag");
    with(done, "value", lit("done"));
    su.actions.push_back(std::move(done));
    ProcessAction stop_search = action("sd_stop_search");
    with(stop_search, "type", lit(options.service_type));
    su.actions.push_back(std::move(stop_search));
    su.actions.push_back(action("sd_exit"));
    description.actor_processes.push_back(std::move(su));
  }

  // ---- SCM process (three-party/hybrid) -----------------------------------
  if (options.scm_count > 0) {
    ActorProcess scm;
    scm.actor_id = "actor2";
    scm.name = "SCM";
    ProcessAction init = action("sd_init");
    with(init, "role", lit("SCM"));
    scm.actions.push_back(std::move(init));
    ProcessAction wait_done = action("wait_for_event");
    with(wait_done, "event_dependency", lit("done"));
    with(wait_done, "from_dependency",
         ParamValue::nodes(NodeSetRef{"actor1", "all"}));
    scm.actions.push_back(std::move(wait_done));
    scm.actions.push_back(action("sd_exit"));
    description.actor_processes.push_back(std::move(scm));
  }

  // ---- loss manipulation on every SU (§IV-D3) ------------------------------
  if (with_loss) {
    for (int i = 0; i < options.su_count; ++i) {
      ManipulationProcess manipulation;
      manipulation.node_id = strings::format("SU%d", i);
      ProcessAction start = action("fault_message_loss_start");
      with(start, "probability", ParamValue::factor("fact_loss"));
      with(start, "direction", lit("both"));
      // Vary the drop pattern across replications by seeding from the
      // replication id (the Fig. 7 technique; a constant seed would replay
      // the identical loss realisation in every run).
      with(start, "randomseed", ParamValue::factor("fact_replication_id"));
      manipulation.actions.push_back(std::move(start));
      ProcessAction wait_done = action("wait_for_event");
      with(wait_done, "event_dependency", lit("done"));
      with(wait_done, "from_dependency",
           ParamValue::nodes(NodeSetRef{"actor1", "all"}));
      manipulation.actions.push_back(std::move(wait_done));
      ProcessAction stop = action("fault_message_loss_stop");
      manipulation.actions.push_back(std::move(stop));
      description.manipulation_processes.push_back(std::move(manipulation));
    }
  }

  // ---- dynamic-world processes (DESIGN.md §12) -----------------------------
  if (options.dynamic.sm_churn) {
    for (int i = 0; i < options.sm_count; ++i) {
      ManipulationProcess manipulation;
      manipulation.node_id = strings::format("SM%d", i);
      ProcessAction start = action("fault_node_churn_start");
      with(start, "mean_uptime_s",
           lit(strings::format_double(options.dynamic.churn_mean_uptime_s)));
      with(start, "mean_downtime_s",
           lit(strings::format_double(options.dynamic.churn_mean_downtime_s)));
      with(start, "distribution", lit(options.dynamic.churn_distribution));
      with(start, "randomseed", ParamValue::factor("fact_replication_id"));
      manipulation.actions.push_back(std::move(start));
      ProcessAction wait_done = action("wait_for_event");
      with(wait_done, "event_dependency", lit("done"));
      with(wait_done, "from_dependency",
           ParamValue::nodes(NodeSetRef{"actor1", "all"}));
      manipulation.actions.push_back(std::move(wait_done));
      manipulation.actions.push_back(action("fault_node_churn_stop"));
      description.manipulation_processes.push_back(std::move(manipulation));
    }
  }
  if (options.dynamic.ge_loss) {
    for (int i = 0; i < options.su_count; ++i) {
      ManipulationProcess manipulation;
      manipulation.node_id = strings::format("SU%d", i);
      ProcessAction start = action("fault_ge_loss_start");
      with(start, "probability_good",
           lit(strings::format_double(options.dynamic.ge_loss_good)));
      with(start, "probability_bad",
           lit(strings::format_double(options.dynamic.ge_loss_bad)));
      with(start, "p_enter_bad",
           lit(strings::format_double(options.dynamic.ge_p_enter_bad)));
      with(start, "p_exit_bad",
           lit(strings::format_double(options.dynamic.ge_p_exit_bad)));
      with(start, "direction", lit("both"));
      with(start, "randomseed", ParamValue::factor("fact_replication_id"));
      manipulation.actions.push_back(std::move(start));
      ProcessAction wait_done = action("wait_for_event");
      with(wait_done, "event_dependency", lit("done"));
      with(wait_done, "from_dependency",
           ParamValue::nodes(NodeSetRef{"actor1", "all"}));
      manipulation.actions.push_back(std::move(wait_done));
      manipulation.actions.push_back(action("fault_ge_loss_stop"));
      description.manipulation_processes.push_back(std::move(manipulation));
    }
  }
  if (!options.dynamic.partition_nodes.empty()) {
    // Timed: wait_for_time shapes avoid waiting on events that may already
    // have fired before this process reaches its wait.
    EnvProcess env;
    ProcessAction wait_start = action("wait_for_time");
    with(wait_start, "time",
         lit(strings::format_double(options.dynamic.partition_start_s)));
    env.actions.push_back(std::move(wait_start));
    ProcessAction start = action("env_partition_start");
    with(start, "nodes",
         lit(strings::join(options.dynamic.partition_nodes, ",")));
    env.actions.push_back(std::move(start));
    ProcessAction wait_heal = action("wait_for_time");
    with(wait_heal, "time",
         lit(strings::format_double(options.dynamic.partition_duration_s)));
    env.actions.push_back(std::move(wait_heal));
    env.actions.push_back(action("env_partition_stop"));
    description.env_processes.push_back(std::move(env));
  }

  // ---- environment traffic process (Fig. 7) --------------------------------
  if (with_traffic) {
    EnvProcess env;
    ProcessAction ready = action("event_flag");
    with(ready, "value", lit("ready_to_init"));
    env.actions.push_back(std::move(ready));
    ProcessAction start = action("env_traffic_start");
    with(start, "bw", ParamValue::factor("fact_bw"));
    with(start, "choice", lit("1"));  // non-acting nodes
    with(start, "random_switch_amount", lit("1"));
    with(start, "random_switch_seed",
         ParamValue::factor("fact_replication_id"));
    with(start, "random_pairs", ParamValue::factor("fact_pairs"));
    with(start, "random_seed", ParamValue::factor("fact_pairs"));
    env.actions.push_back(std::move(start));
    ProcessAction wait_done = action("wait_for_event");
    with(wait_done, "event_dependency", lit("done"));
    with(wait_done, "from_dependency",
         ParamValue::nodes(NodeSetRef{"actor1", "all"}));
    env.actions.push_back(std::move(wait_done));
    env.actions.push_back(action("env_traffic_stop"));
    description.env_processes.push_back(std::move(env));
  }

  EXC_TRY(description.validate());
  return description;
}

Result<net::Topology> topology_for(const ExperimentDescription& description,
                                   const TopologyOptions& options) {
  std::vector<std::string> names;
  for (const PlatformNode& node : description.platform.actor_nodes) {
    names.push_back(node.id);
  }
  for (const PlatformNode& node : description.platform.environment_nodes) {
    names.push_back(node.id);
  }
  if (names.empty()) return err_invalid("description declares no nodes");

  switch (options.kind) {
    case TopologyKind::kFullMesh: {
      net::Topology topo;
      for (const std::string& name : names) topo.add_node(name);
      for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j) {
          EXC_TRY(topo.connect(static_cast<net::NodeId>(i),
                               static_cast<net::NodeId>(j), options.link));
        }
      }
      return topo;
    }
    case TopologyKind::kChain: {
      // SMs at the head, then `chain_spacing` relays between consecutive
      // named nodes so hop distance is controlled.
      net::Topology topo;
      net::NodeId previous = net::kInvalidNode;
      int relay = 0;
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0) {
          for (int r = 0; r < options.chain_spacing - 1; ++r) {
            net::NodeId hop = topo.add_node(
                strings::format("RELAY%d", relay++),
                static_cast<double>(topo.node_count()), 0.0);
            EXC_TRY(topo.connect(previous, hop, options.link));
            previous = hop;
          }
        }
        net::NodeId current =
            topo.add_node(names[i], static_cast<double>(topo.node_count()), 0.0);
        if (previous != net::kInvalidNode) {
          EXC_TRY(topo.connect(previous, current, options.link));
        }
        previous = current;
      }
      return topo;
    }
    case TopologyKind::kGrid: {
      auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(names.size()))));
      net::Topology grid = net::Topology::grid(side, side, options.link);
      // Rename the first |names| grid nodes; surplus stay as relays.
      net::Topology topo;
      for (std::size_t i = 0; i < grid.node_count(); ++i) {
        const net::TopologyNode& node = grid.nodes()[i];
        topo.add_node(i < names.size() ? names[i] : node.name, node.x, node.y);
      }
      for (const net::Link& link : grid.links()) {
        EXC_TRY(topo.connect(link.a, link.b, link.model));
      }
      return topo;
    }
    case TopologyKind::kRandomGeometric: {
      EXC_ASSIGN_OR_RETURN(
          net::Topology random,
          net::Topology::random_geometric(
              std::max(names.size(), static_cast<std::size_t>(names.size())),
              options.radius, options.seed, options.link));
      net::Topology topo;
      for (std::size_t i = 0; i < random.node_count(); ++i) {
        const net::TopologyNode& node = random.nodes()[i];
        topo.add_node(i < names.size() ? names[i] : node.name, node.x, node.y);
      }
      for (const net::Link& link : random.links()) {
        EXC_TRY(topo.connect(link.a, link.b, link.model));
      }
      return topo;
    }
  }
  return err_internal("unhandled topology kind");
}

}  // namespace excovery::core::scenario
