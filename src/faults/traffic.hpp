// Background traffic generation (§IV-D2).
//
// "Creates network load between a given number of node pairs.  Each pair
// bidirectionally communicates at a given data rate.  Pairs can be randomly
// chosen from the acting nodes, non-acting nodes or all nodes.  They vary
// from run to run as determined by a switch amount parameter."
//
// Pair selection and the per-run switching are deterministic in their seeds
// so that replications can reproduce identical load patterns (Fig. 7 wires
// the replication id into random_switch_seed for exactly this purpose).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/lifetime.hpp"
#include "sim/scheduler.hpp"

namespace excovery::faults {

/// Which candidate set pairs are drawn from (Fig. 7 <choice>).
enum class PairChoice {
  kActing = 0,     ///< nodes mapped to actors of the experiment process
  kNonActing = 1,  ///< environment nodes only
  kAll = 2,
};

Result<PairChoice> parse_pair_choice(const std::string& text);

struct TrafficConfig {
  double rate_kbps = 50.0;       ///< per pair, per direction
  int pairs = 1;                 ///< number of node pairs
  PairChoice choice = PairChoice::kNonActing;
  std::uint64_t pair_seed = 0;   ///< seed for the base pair selection
  int switch_amount = 0;         ///< pairs switched out per run
  std::uint64_t switch_seed = 0; ///< seed for the per-run switching
  std::size_t payload_bytes = 512;
};

/// An unordered node pair.
struct NodePair {
  net::NodeId a = net::kInvalidNode;
  net::NodeId b = net::kInvalidNode;

  friend bool operator==(const NodePair&, const NodePair&) = default;
};

/// Deterministically choose `count` distinct pairs from candidates.
/// Fails if the candidate set yields fewer than `count` distinct pairs.
Result<std::vector<NodePair>> select_pairs(
    const std::vector<net::NodeId>& candidates, int count,
    std::uint64_t seed);

/// Replace `amount` pairs of `current` with fresh pairs drawn from the
/// candidates (deterministic in seed and run index).  Pairs already present
/// are never duplicated.
std::vector<NodePair> switch_pairs(std::vector<NodePair> current,
                                   const std::vector<net::NodeId>& candidates,
                                   int amount, std::uint64_t seed,
                                   std::uint64_t run_index);

/// Constant-bit-rate bidirectional load between node pairs.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(net::Network& network);
  ~TrafficGenerator();

  TrafficGenerator(const TrafficGenerator&) = delete;
  TrafficGenerator& operator=(const TrafficGenerator&) = delete;

  /// Start generating load.  `acting` and `environment` are the node sets
  /// the choice parameter selects from; `run_index` drives pair switching.
  Status start(const TrafficConfig& config,
               const std::vector<net::NodeId>& acting,
               const std::vector<net::NodeId>& environment,
               std::uint64_t run_index);
  void stop();
  bool running() const noexcept { return running_; }

  const std::vector<NodePair>& active_pairs() const noexcept { return pairs_; }

  /// Offered load so far (packets scheduled for sending).
  std::uint64_t packets_offered() const noexcept { return offered_; }
  /// Load packets that reached their pair peer.
  std::uint64_t packets_delivered() const noexcept { return delivered_; }

 private:
  void schedule_next(std::size_t flow_index);

  struct Flow {
    net::NodeId from;
    net::NodeId to;
    sim::SimDuration interval;
  };

  net::Network& network_;
  std::vector<NodePair> pairs_;
  std::vector<Flow> flows_;
  std::vector<net::NodeId> bound_;
  TrafficConfig config_;
  bool running_ = false;
  sim::GenerationGate generation_;  ///< invalidates scheduled sends on stop
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace excovery::faults
