// Hot-path kernel overhaul tests: timer-arena edge cases, zero-allocation
// steady state, copy-on-write payload semantics, indexed event-bus
// dispatch, and a determinism replay proof over a seeded mesh scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/uid_set.hpp"
#include "sim/event_bus.hpp"
#include "sim/scheduler.hpp"

// The replacement operator new/delete intentionally pair ::new with
// std::malloc/std::free; GCC's heuristic cannot see that they match.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace excovery {
namespace {

using net::Address;
using net::NodeId;
using net::Packet;
using sim::Scheduler;
using sim::SimDuration;
using sim::SimTime;
using sim::TimerHandle;

// ---- scheduler arena edge cases --------------------------------------------

TEST(SchedulerArena, CancelInsideCallbackPreventsSameTimePeer) {
  Scheduler scheduler;
  bool second_ran = false;
  TimerHandle second;
  scheduler.schedule(SimDuration::from_millis(5),
                     [&] { scheduler.cancel(second); });
  second = scheduler.schedule(SimDuration::from_millis(5),
                              [&] { second_ran = true; });
  scheduler.run();
  EXPECT_FALSE(second_ran);
  EXPECT_TRUE(scheduler.idle());
}

TEST(SchedulerArena, CancelOwnHandleInsideCallbackIsNoop) {
  Scheduler scheduler;
  int runs = 0;
  TimerHandle self;
  self = scheduler.schedule(SimDuration::from_millis(1), [&] {
    ++runs;
    scheduler.cancel(self);  // already executing: must be a no-op
  });
  scheduler.run();
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(scheduler.idle());
}

TEST(SchedulerArena, StaleHandleCannotCancelSlotReuse) {
  Scheduler scheduler;
  bool second_ran = false;
  TimerHandle first = scheduler.schedule(SimDuration::zero(), [] {});
  scheduler.run();
  // The slot of `first` is free again; the next schedule reuses it.
  TimerHandle second = scheduler.schedule(SimDuration::from_millis(1),
                                          [&] { second_ran = true; });
  scheduler.cancel(first);  // stale generation: must not touch `second`
  EXPECT_EQ(scheduler.pending(), 1u);
  scheduler.run();
  EXPECT_TRUE(second_ran);
  (void)second;
}

TEST(SchedulerArena, DoubleCancelIsNoop) {
  Scheduler scheduler;
  bool ran = false;
  TimerHandle handle =
      scheduler.schedule(SimDuration::from_millis(1), [&] { ran = true; });
  TimerHandle keeper =
      scheduler.schedule(SimDuration::from_millis(2), [] {});
  scheduler.cancel(handle);
  scheduler.cancel(handle);  // second cancel must not free another slot
  EXPECT_EQ(scheduler.pending(), 1u);
  scheduler.run();
  EXPECT_FALSE(ran);
  (void)keeper;
}

TEST(SchedulerArena, GenerationReuseOverManyCycles) {
  Scheduler scheduler;
  std::vector<TimerHandle> stale;
  int executions = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    TimerHandle h = scheduler.schedule(SimDuration::from_micros(cycle),
                                       [&] { ++executions; });
    if (cycle % 2 == 0) {
      scheduler.cancel(h);
    }
    stale.push_back(h);
    scheduler.run();
    // Stale handles from every earlier cycle must stay inert.
    for (const TimerHandle& old : stale) scheduler.cancel(old);
  }
  EXPECT_EQ(executions, 500);
  // The arena recycles a handful of slots instead of growing per timer.
  EXPECT_LE(scheduler.arena_size(), 8u);
}

TEST(SchedulerArena, RescheduleInsideCallbackReusesSlots) {
  Scheduler scheduler;
  int hops = 0;
  std::function<void()> chain = [&] {
    if (++hops < 100) scheduler.schedule(SimDuration::from_micros(1), chain);
  };
  scheduler.schedule(SimDuration::zero(), chain);
  scheduler.run();
  EXPECT_EQ(hops, 100);
  EXPECT_LE(scheduler.arena_size(), 4u);
}

TEST(SchedulerArena, RunUntilSkipsCancelledHeadsWithoutAdvancingTime) {
  Scheduler scheduler;
  int count = 0;
  TimerHandle early =
      scheduler.schedule(SimDuration::from_millis(1), [&] { ++count; });
  scheduler.schedule(SimDuration::from_millis(50), [&] { ++count; });
  scheduler.cancel(early);
  EXPECT_EQ(scheduler.run_until(SimTime::from_millis(10)), 0u);
  EXPECT_EQ(scheduler.now(), SimTime::from_millis(10));
  scheduler.run();
  EXPECT_EQ(count, 1);
}

TEST(SchedulerArena, OversizedCallbackStillRuns) {
  // Callables beyond the inline buffer take the heap fallback path.
  Scheduler scheduler;
  std::array<std::uint64_t, 64> big{};
  big[0] = 41;
  std::uint64_t result = 0;
  scheduler.schedule(SimDuration::zero(), [big, &result] { result = big[0] + 1; });
  scheduler.run();
  EXPECT_EQ(result, 42u);
}

// ---- zero steady-state allocation ------------------------------------------

TEST(SchedulerArena, ZeroSteadyStateAllocationsForInlineCallbacks) {
  Scheduler scheduler;
  std::uint64_t sink = 0;
  constexpr std::size_t kBatch = 256;
  // Warm-up: grow the arena, free list and heap to working size.
  for (std::size_t i = 0; i < kBatch; ++i) {
    scheduler.schedule(SimDuration(static_cast<std::int64_t>(i)),
                       [&sink, i] { sink += i; });
  }
  scheduler.run();

  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      scheduler.schedule(SimDuration(static_cast<std::int64_t>(i % 32)),
                         [&sink, i] { sink += i; });
    }
    scheduler.run();
  }
  std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "schedule→execute churn must not allocate";
  EXPECT_GT(sink, 0u);
}

// ---- determinism replay ----------------------------------------------------

/// One delivery observation: (global time ns, node, packet uid).
using DeliveryTrace = std::vector<std::tuple<std::int64_t, NodeId, std::uint64_t>>;

struct ReplayResult {
  DeliveryTrace deliveries;
  std::uint64_t events_executed = 0;
  std::uint64_t uids_sent = 0;
  net::NetworkStats stats;
};

/// A seeded mesh scenario exercising flood fan-out, unicast chains, filter
/// delays, link loss, timer cancel/reschedule — everything that feeds the
/// (when, seq) execution order.  Must produce a bit-identical trace on
/// every invocation (the platform property §IV-A depends on; run_campaign
/// promises bit-identical parallel results on top of it).
ReplayResult run_replay_scenario() {
  ReplayResult result;
  Scheduler scheduler;
  net::LinkModel lossy;
  lossy.loss = 0.1;
  lossy.jitter_frac = 0.2;
  net::Topology topology = net::Topology::grid(4, 4, lossy);
  net::Network network(scheduler, std::move(topology), /*seed=*/20140519);

  const Address group = Address::sd_multicast();
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, net::kSdPort, [&result, &scheduler](NodeId at,
                                                        const Packet& p) {
      result.deliveries.emplace_back(scheduler.now().nanos(), at, p.uid);
    });
  }
  // A filter that delays every 3rd packet at node 5 (rx side).
  int counter = 0;
  network.add_filter(
      {net::NodeId{5}, net::Direction::kReceive},
      [&counter](NodeId, net::Direction, Packet&) {
        if (++counter % 3 == 0) {
          return net::FilterVerdict::delayed(SimDuration::from_micros(37));
        }
        return net::FilterVerdict::pass();
      });

  // Staggered multicast floods from three corners plus unicast cross
  // traffic, with some timers cancelled mid-flight.
  std::vector<TimerHandle> cancels;
  for (int wave = 0; wave < 5; ++wave) {
    scheduler.schedule(
        SimDuration::from_millis(wave * 7), [&network, &result, wave] {
          Packet packet;
          packet.dst = Address::sd_multicast();
          packet.dst_port = net::kSdPort;
          packet.ttl = 8;
          packet.payload.assign(64 + static_cast<std::size_t>(wave), 0x3C);
          auto uid = network.send(static_cast<NodeId>((wave * 5) % 16),
                                  std::move(packet));
          if (uid.ok()) ++result.uids_sent;
        });
    scheduler.schedule(
        SimDuration::from_millis(wave * 7 + 3), [&network, &result, wave] {
          Packet packet;
          packet.dst = Address::for_node(15);
          packet.dst_port = net::kSdPort;
          packet.payload.assign(32, 0x7E);
          auto uid =
              network.send(static_cast<NodeId>(wave % 4), std::move(packet));
          if (uid.ok()) ++result.uids_sent;
        });
    cancels.push_back(scheduler.schedule(
        SimDuration::from_millis(wave * 7 + 5), [] { ADD_FAILURE(); }));
  }
  scheduler.schedule(SimDuration::from_millis(2), [&scheduler, &cancels] {
    for (TimerHandle& h : cancels) scheduler.cancel(h);
  });
  scheduler.run();
  result.events_executed = scheduler.executed();
  result.stats = network.stats();
  return result;
}

TEST(DeterminismReplay, IdenticalSeededRunsProduceIdenticalTraces) {
  ReplayResult a = run_replay_scenario();
  ReplayResult b = run_replay_scenario();
  EXPECT_GT(a.deliveries.size(), 0u);
  EXPECT_GT(a.uids_sent, 0u);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.forwarded, b.stats.forwarded);
  EXPECT_EQ(a.stats.dropped_loss, b.stats.dropped_loss);
  EXPECT_EQ(a.stats.dropped_queue, b.stats.dropped_queue);
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent);
}

TEST(DeterminismReplay, SameTimeEventsExecuteInScheduleOrder) {
  // The (when, seq) tie-break the seed kernel guaranteed, preserved by the
  // arena + 4-ary heap: equal timestamps run in schedule-call order.
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    scheduler.schedule(SimDuration::from_millis(i % 3),
                       [&order, i] { order.push_back(i); });
  }
  scheduler.run();
  std::vector<int> expected;
  for (int when = 0; when < 3; ++when) {
    for (int i = when; i < 100; i += 3) expected.push_back(i);
  }
  // Events sort by (when, seq): all delay-0 in schedule order, then
  // delay-1, then delay-2.
  std::vector<int> expected_sorted;
  for (int when = 0; when < 3; ++when) {
    for (int i = 0; i < 100; ++i) {
      if (i % 3 == when) expected_sorted.push_back(i);
    }
  }
  EXPECT_EQ(order, expected_sorted);
}

// ---- copy-on-write payload -------------------------------------------------

TEST(PayloadBuffer, DuplicatesShareUntilMutation) {
  net::PayloadBuffer original{Bytes{1, 2, 3, 4}};
  net::PayloadBuffer copy = original;
  EXPECT_EQ(original.use_count(), 2);
  EXPECT_EQ(copy.bytes(), (Bytes{1, 2, 3, 4}));

  copy[0] = 9;  // detach
  EXPECT_EQ(original.use_count(), 1);
  EXPECT_EQ(copy.use_count(), 1);
  EXPECT_EQ(original.bytes(), (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(copy.bytes(), (Bytes{9, 2, 3, 4}));
}

TEST(PayloadBuffer, AssignAndEquality) {
  net::PayloadBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.assign(3, 0xAB);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer, (Bytes{0xAB, 0xAB, 0xAB}));
  buffer = Bytes{7};
  EXPECT_EQ(buffer.bytes(), Bytes{7});
  net::PayloadBuffer other{Bytes{7}};
  EXPECT_EQ(buffer, other);  // value equality across distinct buffers
}

TEST(PayloadBuffer, FloodSharesOnePayloadAcrossDuplicates) {
  Scheduler scheduler;
  net::LinkModel ideal = net::LinkModel::ideal();
  net::Network network(scheduler, net::Topology::grid(3, 3, ideal),
                       /*seed=*/3);
  const Address group = Address::sd_multicast();
  long max_sharers = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, net::kSdPort,
                 [&max_sharers](NodeId, const Packet& p) {
                   max_sharers = std::max(max_sharers, p.payload.use_count());
                 });
  }
  Packet packet;
  packet.dst = group;
  packet.dst_port = net::kSdPort;
  packet.payload.assign(128, 0x11);
  ASSERT_TRUE(network.send(0, std::move(packet)).ok());
  scheduler.run();
  // Duplicates in flight + captures alias one buffer instead of deep
  // copies: at least a handful of sharers must be observable at once.
  EXPECT_GT(max_sharers, 3);
}

TEST(UidSet, InsertContainsClear) {
  net::UidSet set;
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));
  for (std::uint64_t uid = 2; uid <= 500; ++uid) EXPECT_TRUE(set.insert(uid));
  EXPECT_EQ(set.size(), 500u);
  EXPECT_TRUE(set.contains(250));
  EXPECT_FALSE(set.contains(501));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.insert(1));
}

// ---- event bus regression --------------------------------------------------

TEST(EventBusIndexed, NamedAndWildcardInterleaveBySubscriptionOrder) {
  sim::EventBus bus;
  std::vector<std::string> order;
  bus.subscribe("", [&](const sim::BusEvent&) { order.push_back("W1"); });
  bus.subscribe("x", [&](const sim::BusEvent&) { order.push_back("N1"); });
  bus.subscribe("", [&](const sim::BusEvent&) { order.push_back("W2"); });
  bus.subscribe("x", [&](const sim::BusEvent&) { order.push_back("N2"); });
  bus.subscribe("y", [&](const sim::BusEvent&) { order.push_back("Y"); });
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(order, (std::vector<std::string>{"W1", "N1", "W2", "N2"}));
}

TEST(EventBusIndexed, RemovalDuringNestedPublishNeverFiresAgain) {
  sim::EventBus bus;
  int removed_hits = 0;
  int outer_rounds = 0;
  sim::SubscriptionHandle victim;
  // Subscriber 1 (name "x"): on the first outer publish, publishes a
  // nested "y"; the "y" handler unsubscribes the victim while the OUTER
  // publish of "x" is still mid-dispatch.
  bus.subscribe("x", [&](const sim::BusEvent& e) {
    if (e.name == "x" && ++outer_rounds == 1) {
      bus.publish({SimTime::zero(), "n", "y", Value{}});
    }
  });
  bus.subscribe("y", [&](const sim::BusEvent&) { bus.unsubscribe(victim); });
  victim = bus.subscribe("x",
                         [&](const sim::BusEvent&) { ++removed_hits; });
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  // The victim was removed during the nested publish, before its turn in
  // the outer dispatch: it must not have fired then, nor ever after.
  EXPECT_EQ(removed_hits, 0);
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(removed_hits, 0);
}

TEST(EventBusIndexed, UnsubscribeOutsidePublishTakesEffectImmediately) {
  sim::EventBus bus;
  int hits = 0;
  sim::SubscriptionHandle h =
      bus.subscribe("x", [&](const sim::BusEvent&) { ++hits; });
  bus.unsubscribe(h);
  bus.unsubscribe(h);  // double unsubscribe must be a no-op
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(hits, 0);
}

TEST(EventBusIndexed, ManyNamesDispatchOnlyMatching) {
  sim::EventBus bus;
  int matching = 0;
  int others = 0;
  for (int i = 0; i < 50; ++i) {
    bus.subscribe("event_" + std::to_string(i),
                  [&others](const sim::BusEvent&) { ++others; });
  }
  bus.subscribe("target", [&matching](const sim::BusEvent&) { ++matching; });
  bus.publish({SimTime::zero(), "n", "target", Value{}});
  EXPECT_EQ(matching, 1);
  EXPECT_EQ(others, 0);
}

}  // namespace
}  // namespace excovery
