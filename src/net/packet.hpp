// The simulated network packet.
//
// Matches the paper's measurement model (§IV-B2): "A measured packet
// consists of a time stamp ... a unique identifier, a source and destination
// network address and the packet content itself."  The 16-bit `tag` field
// reproduces the prototype's packet tagger (§VI-A), which writes an
// incrementing identifier into an IP header option of every selected packet;
// `route` realises the hop-by-hop packet tracking required by §IV-A3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.hpp"
#include "net/address.hpp"
#include "net/payload.hpp"
#include "sim/time.hpp"

namespace excovery::net {

/// Index of a node within a Network (dense, assigned at topology build).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

struct Packet {
  Address src;
  Address dst;
  Port src_port = 0;
  Port dst_port = 0;
  std::uint8_t ttl = 32;       ///< hop limit for multicast flooding
  std::uint16_t tag = 0;       ///< packet tagger id (set by the sender node)
  std::uint64_t uid = 0;       ///< globally unique id (set by the network)
  PayloadBuffer payload;       ///< copy-on-write: duplicates share bytes
  std::vector<NodeId> route;   ///< nodes traversed, in order (tracking)
  /// Unicast destination resolved from `dst` at the origin hop — a routing
  /// hint so relays skip the address lookup.  Never serialised to the wire;
  /// every use is re-validated against the topology before trusting it.
  NodeId dst_node = kInvalidNode;

  std::size_t wire_size() const noexcept {
    // 28-byte IP+UDP-style header + 4-byte tag option + payload.
    return 32 + payload.size();
  }
};

/// Direction of packet movement relative to a node.
enum class Direction { kReceive, kTransmit };

inline const char* to_string(Direction d) noexcept {
  return d == Direction::kReceive ? "rx" : "tx";
}

/// One entry in a node's packet capture (§IV-B2, stored into the Packets
/// table).  Timestamps are the capturing node's *local* clock reading, as on
/// a real testbed; conditioning later maps them to the common time base.
struct CapturedPacket {
  sim::SimTime local_time;
  Direction direction;
  NodeId node = kInvalidNode;
  Packet packet;
};

/// Serialise a captured packet's complete, unaltered content (headers, tag,
/// route trace and payload) into the byte image stored in the Packets
/// table; `from_wire` recovers it for analysis.
Bytes capture_to_wire(const CapturedPacket& captured);

struct WireImage {
  Direction direction = Direction::kReceive;
  Packet packet;
};
Result<WireImage> capture_from_wire(const Bytes& data);

}  // namespace excovery::net
