file(REMOVE_RECURSE
  "CMakeFiles/excovery_faults.dir/injector.cpp.o"
  "CMakeFiles/excovery_faults.dir/injector.cpp.o.d"
  "CMakeFiles/excovery_faults.dir/traffic.cpp.o"
  "CMakeFiles/excovery_faults.dir/traffic.cpp.o.d"
  "libexcovery_faults.a"
  "libexcovery_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
