file(REMOVE_RECURSE
  "CMakeFiles/excovery_sd.dir/cache.cpp.o"
  "CMakeFiles/excovery_sd.dir/cache.cpp.o.d"
  "CMakeFiles/excovery_sd.dir/hybrid.cpp.o"
  "CMakeFiles/excovery_sd.dir/hybrid.cpp.o.d"
  "CMakeFiles/excovery_sd.dir/mdns.cpp.o"
  "CMakeFiles/excovery_sd.dir/mdns.cpp.o.d"
  "CMakeFiles/excovery_sd.dir/message.cpp.o"
  "CMakeFiles/excovery_sd.dir/message.cpp.o.d"
  "CMakeFiles/excovery_sd.dir/model.cpp.o"
  "CMakeFiles/excovery_sd.dir/model.cpp.o.d"
  "CMakeFiles/excovery_sd.dir/slp.cpp.o"
  "CMakeFiles/excovery_sd.dir/slp.cpp.o.d"
  "libexcovery_sd.a"
  "libexcovery_sd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_sd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
