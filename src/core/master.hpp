// ExperiMaster: "a program that executes experiment runs as specified in
// the description.  Each run is a sequence of actions performed on the
// participating nodes" (§IV) ... "ExCovery manages series of experiments
// and recovers from failures by resuming aborted runs" (§VII).
//
// Per-run workflow (§IV-C1): each run consists of three phases —
//   preparation: reset the environment to a defined initial condition
//     (drop leftover packets, stop stray faults), run_init on every node,
//     time-sync measurement per participant, topology probe;
//   execution: all process interpreters (actor processes per mapped node,
//     manipulation processes, environment processes) run concurrently under
//     the discrete-event scheduler until completion or the run watchdog;
//   clean-up: run_exit on every node (stops roles/faults, collects packet
//     captures and plugin measurements).
//
// Runs are independent — each resets the platform to a defined initial
// condition and consumes its own RNG substream — so with run_workers > 1
// the master shards the treatment plan across worker-owned platform
// replicas and merges each finished run back in run-id order.  The merged
// level-2 store, and therefore the conditioned package, is bit-identical
// to sequential execution (DESIGN.md §10).
//
// After all runs: collection & conditioning produce the level-3 package
// (storage::condition), completing the workflow of Fig. 3.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/thread_pool.hpp"
#include "core/description.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"
#include "core/run_executor.hpp"
#include "storage/conditioning.hpp"
#include "storage/package.hpp"

namespace excovery::core {

struct MasterOptions {
  /// Attempts per run before the experiment gives up (failure recovery).
  int max_attempts_per_run = 3;
  /// Simulated-time watchdog per run; a run whose processes have not all
  /// completed by then is aborted (and resumed/retried).
  sim::SimDuration run_watchdog = sim::SimDuration::from_seconds(300);
  /// Extra simulated settle time after the last process finishes, letting
  /// in-flight packets drain before clean-up.
  sim::SimDuration settle = sim::SimDuration::from_millis(200);
  /// Comment stored into ExperimentInfo.
  std::string comment;
  /// Directory for post-mortem flight-recorder dumps: every failed run
  /// attempt writes the lineage ring there as a readable artifact
  /// (DESIGN.md §16).  Empty falls back to EXCOVERY_FLIGHT_DIR; unset means
  /// no dumps.  Dump files are diagnostics only — they never feed back into
  /// the conditioned package.
  std::string flight_dir;

  /// Worker threads executing runs on platform replicas: 1 = sequential on
  /// the master's own platform, 0 = hardware concurrency.  The conditioned
  /// package is bit-identical for every value.
  std::size_t run_workers = 1;
  /// Optional shared pool for the extra run workers (run_campaign points
  /// this at the campaign pool so campaign- and run-level parallelism share
  /// one set of threads).  The calling thread always participates, so runs
  /// make progress even when the pool is saturated.  When null, the master
  /// spawns its own short-lived threads.
  ThreadPool* run_pool = nullptr;

  /// Observability context (metrics, tracing, per-run ledger); null = none.
  /// Attaching a context never changes the conditioned package: every
  /// recorded value is out-of-band (DESIGN.md §11).
  obs::ObsContext* obs = nullptr;

  /// Progress callback: (run, attempt, ok).  With run_workers > 1 it is
  /// invoked from worker threads, serialized by the master, in completion
  /// order rather than run order.
  std::function<void(const RunSpec&, int attempt, bool ok)> progress;
  /// Test hook: force the given (run_id, attempt) to abort mid-run.  With
  /// run_workers > 1 it is invoked concurrently from worker threads.
  std::function<bool(std::int64_t run_id, int attempt)> abort_hook;
};

class ExperiMaster {
 public:
  /// The master drives an already-created platform (the platform embodies
  /// the "platform setup" step of Fig. 3).
  ExperiMaster(const ExperimentDescription& description,
               SimPlatform& platform, MasterOptions options = {});

  /// Execute the full treatment plan and return the conditioned level-3
  /// package (collection + conditioning + storage of Fig. 3).
  Result<storage::ExperimentPackage> execute();

  /// Execute a single run on the master's platform (used by the sequential
  /// path of execute(); public for tests/benches).
  Status execute_run(const RunSpec& run, int attempt = 1);

  const TreatmentPlan& plan() const noexcept { return *plan_; }
  SimPlatform& platform() noexcept { return platform_; }

  /// Runs that completed (in execution order).
  const std::vector<std::int64_t>& completed_runs() const noexcept {
    return platform_.level2().completed_runs();
  }
  /// Total aborted attempts encountered (recovery metric).
  int aborted_attempts() const noexcept { return aborted_attempts_; }

 private:
  RunExecutorOptions executor_options() const;

  /// Retry loop around RunExecutor::execute_run for one run.  On abort the
  /// attempt's partial data is discarded from `platform`'s store.  Adds the
  /// number of aborted attempts to `aborted`.
  Status execute_with_retries(RunExecutor& executor, SimPlatform& platform,
                              const RunSpec& run, int& aborted);

  /// Control-channel RPC used for experiment_init / experiment_exit.
  Status node_rpc(const std::string& concrete_node, const std::string& method);

  Status run_all_sequential(const std::vector<const RunSpec*>& todo);
  Status run_all_sharded(const std::vector<const RunSpec*>& todo,
                         std::size_t workers);

  const ExperimentDescription& description_;
  SimPlatform& platform_;
  MasterOptions options_;
  std::unique_ptr<TreatmentPlan> plan_;
  std::unique_ptr<RunExecutor> executor_;  ///< drives the master's platform
  /// Metric shard the master's own executor records into (sequential path);
  /// merged into the obs context once the run phase completes.
  std::unique_ptr<obs::MetricsShard> obs_shard_;
  std::mutex progress_mutex_;
  std::atomic<std::size_t> progress_done_{0};
  std::size_t progress_total_ = 0;
  int aborted_attempts_ = 0;
  bool experiment_initialized_ = false;
};

}  // namespace excovery::core
