#include "core/platform.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "core/node_manager.hpp"
#include "sd/hybrid.hpp"
#include "sd/mdns.hpp"
#include "sd/slp.hpp"

namespace excovery::core {

Result<SdProtocol> parse_protocol(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(text));
  if (t.empty() || t == "mdns" || t == "zeroconf" || t == "avahi") {
    return SdProtocol::kMdns;
  }
  if (t == "slp" || t == "three-party" || t == "directory") {
    return SdProtocol::kSlp;
  }
  if (t == "hybrid" || t == "adaptive") return SdProtocol::kHybrid;
  return err_validation("unknown sd protocol '" + text + "'");
}

std::string_view to_string(SdProtocol protocol) noexcept {
  switch (protocol) {
    case SdProtocol::kMdns: return "mdns";
    case SdProtocol::kSlp: return "slp";
    case SdProtocol::kHybrid: return "hybrid";
  }
  return "?";
}

SimPlatform::SimPlatform(const ExperimentDescription& description,
                         SimPlatformConfig config)
    : config_(std::move(config)),
      sync_rng_(RngFactory(config_.seed).stream("time-sync")) {
  (void)description;
}

SimPlatform::~SimPlatform() {
  for (const std::string& name : node_names_) transport_.detach(name);
}

Result<std::unique_ptr<SimPlatform>> SimPlatform::create(
    const ExperimentDescription& description, SimPlatformConfig config) {
  // Cannot use make_unique with a private constructor.
  std::unique_ptr<SimPlatform> platform(
      new SimPlatform(description, std::move(config)));
  EXC_TRY(platform->setup(description));
  return platform;
}

Status SimPlatform::setup(const ExperimentDescription& description) {
  network_ = std::make_unique<net::Network>(scheduler_,
                                            std::move(config_.topology),
                                            config_.seed);
  network_->set_lineage(&lineage_);

  recorder_ = std::make_unique<EventRecorder>(
      scheduler_, level2_, [this](const std::string& node) -> std::int64_t {
        auto it = name_to_id_.find(node);
        if (it == name_to_id_.end()) {
          // Environment pseudo-node and the master read the reference clock.
          return scheduler_.now().nanos();
        }
        return network_->clock(it->second).read(scheduler_.now()).nanos();
      });

  recorder_->set_lineage(&lineage_);

  injector_ = std::make_unique<faults::FaultInjector>(*network_,
                                                      net::kSdPort);
  injector_->set_event_sink([this](const std::string& node,
                                   const std::string& event,
                                   const Value& parameter) {
    recorder_->record(node.empty() ? kEnvironmentNode : node, event,
                      parameter);
  });
  engine_ = std::make_unique<faults::FaultScheduleEngine>(*injector_);
  engine_->set_lifecycle_hooks(
      [this](const std::string& node) {
        auto it = managers_.find(node);
        if (it != managers_.end()) it->second->crash();
      },
      [this](const std::string& node) {
        auto it = managers_.find(node);
        if (it != managers_.end()) it->second->restore();
      });
  traffic_ = std::make_unique<faults::TrafficGenerator>(*network_);

  // Resolve protocol from the description's informative parameters, if set.
  std::string protocol_text = description.info("sd_protocol");
  if (!protocol_text.empty()) {
    EXC_ASSIGN_OR_RETURN(config_.protocol, parse_protocol(protocol_text));
  }

  // Map description nodes to topology nodes by name and wire one
  // NodeManager + RPC endpoint per concrete node.
  auto add_node = [&](const PlatformNode& platform_node,
                      bool is_actor) -> Status {
    EXC_ASSIGN_OR_RETURN(net::NodeId id,
                         network_->topology().find(platform_node.id));
    if (!platform_node.address.empty()) {
      // Cross-check declared addresses against the simulator's.
      EXC_ASSIGN_OR_RETURN(net::Address declared,
                           net::Address::parse(platform_node.address));
      if (declared != network_->topology().node(id).address) {
        return err_validation(
            "platform node '" + platform_node.id + "' declares address " +
            platform_node.address + " but the topology assigns " +
            network_->topology().node(id).address.to_string());
      }
    }
    const std::string& name = platform_node.id;
    if (name_to_id_.count(name) != 0) {
      return err_validation("duplicate platform node '" + name + "'");
    }
    name_to_id_.emplace(name, id);
    node_names_.push_back(name);
    (is_actor ? actor_node_names_ : environment_node_names_).push_back(name);
    if (is_actor) {
      if (platform_node.abstract_id.empty()) {
        return err_validation("actor node '" + name + "' lacks mapping");
      }
      abstract_to_concrete_[platform_node.abstract_id] = name;
    }

    // Imperfect local clock, deterministic per (seed, node name).
    Pcg32 clock_rng =
        RngFactory(config_.seed).stream("clock-model/" + name);
    sim::ClockModel model;
    model.offset = sim::SimDuration(clock_rng.uniform_int(
        -config_.max_clock_offset.nanos(), config_.max_clock_offset.nanos()));
    model.drift_ppm =
        clock_rng.uniform(-config_.max_drift_ppm, config_.max_drift_ppm);
    model.read_jitter = config_.clock_read_jitter;
    network_->set_clock_model(id, model);

    // SD agent factory bound to the configured protocol.
    SdProtocol protocol = config_.protocol;
    SimPlatformConfig* cfg = &config_;
    net::Network* network = network_.get();
    AgentFactory factory = [protocol, cfg, network, id,
                            name]() -> std::unique_ptr<sd::SdAgent> {
      switch (protocol) {
        case SdProtocol::kMdns: {
          sd::MdnsConfig mdns = cfg->mdns;
          mdns.seed = cfg->seed ^ fnv1a64("agent/" + name);
          return std::make_unique<sd::MdnsAgent>(*network, id, mdns);
        }
        case SdProtocol::kSlp: {
          sd::SlpConfig slp = cfg->slp;
          slp.seed = cfg->seed ^ fnv1a64("agent/" + name);
          return std::make_unique<sd::SlpAgent>(*network, id, slp);
        }
        case SdProtocol::kHybrid: {
          sd::HybridConfig hybrid;
          hybrid.mdns = cfg->mdns;
          hybrid.slp = cfg->slp;
          hybrid.mdns.seed = cfg->seed ^ fnv1a64("agent-m/" + name);
          hybrid.slp.seed = cfg->seed ^ fnv1a64("agent-s/" + name);
          return std::make_unique<sd::HybridAgent>(*network, id, hybrid);
        }
      }
      return nullptr;
    };

    auto manager =
        std::make_unique<NodeManager>(*this, name, id, std::move(factory));
    transport_.attach(name, &manager->server());
    managers_.emplace(name, std::move(manager));
    return {};
  };

  for (const PlatformNode& node : description.platform.actor_nodes) {
    EXC_TRY(add_node(node, /*is_actor=*/true));
  }
  for (const PlatformNode& node : description.platform.environment_nodes) {
    EXC_TRY(add_node(node, /*is_actor=*/false));
  }

  if (!description.platform.actor_nodes.empty()) {
    for (const std::string& abstract : description.abstract_nodes) {
      if (abstract_to_concrete_.count(abstract) == 0) {
        return err_validation("abstract node '" + abstract +
                              "' not mapped by the platform specification");
      }
    }
  }
  return {};
}

Result<std::string> SimPlatform::concrete_name(
    const std::string& abstract_id) const {
  auto it = abstract_to_concrete_.find(abstract_id);
  if (it == abstract_to_concrete_.end()) {
    // Identity mapping fallback: descriptions may use the concrete names
    // directly (as the paper's Fig. 8 A->A mapping does).
    if (name_to_id_.count(abstract_id) != 0) return abstract_id;
    return err_not_found("abstract node '" + abstract_id + "' is not mapped");
  }
  return it->second;
}

Result<net::NodeId> SimPlatform::node_id(
    const std::string& concrete_name) const {
  auto it = name_to_id_.find(concrete_name);
  if (it == name_to_id_.end()) {
    return err_not_found("no platform node '" + concrete_name + "'");
  }
  return it->second;
}

NodeManager& SimPlatform::manager(const std::string& concrete_name) {
  return *managers_.at(concrete_name);
}

rpc::RpcClient SimPlatform::client(const std::string& concrete_name) {
  return rpc::RpcClient(transport_, concrete_name);
}

std::int64_t SimPlatform::measure_offset(const std::string& concrete_name) {
  auto it = name_to_id_.find(concrete_name);
  if (it == name_to_id_.end()) return 0;
  sim::LocalClock& clock = network_->clock(it->second);

  // NTP-style: t1 --d1--> node reads local --d2--> t4; the estimate
  //   offset = local - (t1 + t4) / 2
  // carries error (d2 - d1)/2 from path asymmetry.
  double total = 0.0;
  sim::SimTime now = scheduler_.now();
  for (int sample = 0; sample < config_.sync_samples; ++sample) {
    std::int64_t d1 = sync_rng_.uniform_int(config_.control_delay_min.nanos(),
                                            config_.control_delay_max.nanos());
    std::int64_t d2 = sync_rng_.uniform_int(config_.control_delay_min.nanos(),
                                            config_.control_delay_max.nanos());
    std::int64_t t1 = now.nanos();
    std::int64_t local = clock.read(sim::SimTime(t1 + d1)).nanos();
    std::int64_t t4 = t1 + d1 + d2;
    total += static_cast<double>(local) -
             (static_cast<double>(t1) + static_cast<double>(t4)) / 2.0;
  }
  return static_cast<std::int64_t>(total /
                                   static_cast<double>(config_.sync_samples));
}

std::string SimPlatform::measure_topology(
    const std::vector<std::string>& nodes) {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      Result<net::NodeId> a = node_id(nodes[i]);
      Result<net::NodeId> b = node_id(nodes[j]);
      if (!a.ok() || !b.ok()) continue;
      out += strings::format("%s %s %d\n", nodes[i].c_str(), nodes[j].c_str(),
                             network_->hop_count(a.value(), b.value()));
    }
  }
  return out;
}

std::string SimPlatform::measure_topology_detailed() const {
  const net::Topology& topology = network_->topology();
  std::string out = "nodes:\n";
  for (const net::TopologyNode& node : topology.nodes()) {
    out += strings::format("  %-12s %-15s (%.3f, %.3f)\n", node.name.c_str(),
                           node.address.to_string().c_str(), node.x, node.y);
  }
  out += "links:\n";
  for (const net::Link& link : topology.links()) {
    out += strings::format(
        "  %-12s %-12s loss=%.3f delay=%.3fms bw=%.1fMbps\n",
        topology.node(link.a).name.c_str(),
        topology.node(link.b).name.c_str(), link.model.loss,
        link.model.base_delay.millis(), link.model.bandwidth_bps / 1e6);
  }
  return out;
}

void SimPlatform::reset_run_state() {
  traffic_->stop();
  injector_->reset();
  network_->reset_run_state();
  network_->reset_stats();
}

void SimPlatform::begin_run(std::int64_t run_id, int attempt) {
  // Folding the attempt in gives retries fresh randomness while attempt 1
  // stays a pure function of (seed, run id) across worker layouts.
  RngFactory rf = RngFactory(config_.seed)
                      .sub("run", static_cast<std::uint64_t>(run_id))
                      .sub("attempt", static_cast<std::uint64_t>(attempt));
  sync_rng_ = rf.stream("time-sync");
  network_->begin_run(rf.derive_seed("network"));
  lineage_.begin_run(static_cast<std::uint64_t>(run_id),
                     static_cast<std::uint32_t>(attempt));
}

Result<std::unique_ptr<SimPlatform>> SimPlatform::replicate(
    const ExperimentDescription& description) const {
  SimPlatformConfig config = config_;
  // setup() moved the topology into the network; read the live copy back so
  // replicas see runtime link-model changes made before replication.
  config.topology = network_->topology();
  return create(description, std::move(config));
}

}  // namespace excovery::core
