// Observability subsystem (DESIGN.md §11): metrics registry + shards,
// trace-event buffer, and the end-to-end contracts — deterministic-domain
// metrics are bit-identical across worker counts, and attaching an
// ObsContext never changes a byte of the conditioned package.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/obs_switch.hpp"
#include "common/thread_pool.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "storage/package.hpp"

namespace excovery::obs {
namespace {

using core::ExperimentDescription;
using core::MasterOptions;
using core::SimPlatform;
using core::SimPlatformConfig;
using core::scenario::TwoPartyOptions;

// ---- metrics registry + shards ---------------------------------------------

TEST(MetricsRegistry, InternIsIdempotent) {
  MetricsRegistry registry;
  MetricId a = registry.counter("events", MetricDomain::kDeterministic);
  MetricId b = registry.counter("events", MetricDomain::kDeterministic);
  EXPECT_EQ(a.index, b.index);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(registry.size(), 1u);
  MetricId c = registry.gauge("depth", MetricDomain::kBestEffort);
  EXPECT_NE(c.index, a.index);
  std::vector<MetricDesc> descs = registry.descriptors();
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_EQ(descs[0].name, "events");
  EXPECT_EQ(descs[0].kind, MetricKind::kCounter);
  EXPECT_EQ(descs[1].kind, MetricKind::kGauge);
}

TEST(MetricsShard, CounterMergeIsPartitionInvariant) {
  MetricsRegistry registry;
  MetricId id = registry.counter("n");
  // 1+2+...+9 recorded three ways: one shard, two shards, three shards.
  auto record = [&](std::vector<MetricsShard>& shards) {
    for (std::uint64_t i = 1; i <= 9; ++i) {
      shards[i % shards.size()].add(id, i);
    }
    MetricsShard merged(&registry);
    for (const MetricsShard& shard : shards) merged.merge_from(shard);
    return merged.cell(id)->count;
  };
  std::vector<MetricsShard> one(1, MetricsShard(&registry));
  std::vector<MetricsShard> two(2, MetricsShard(&registry));
  std::vector<MetricsShard> three(3, MetricsShard(&registry));
  const std::uint64_t a = record(one);
  EXPECT_EQ(a, 45u);
  EXPECT_EQ(record(two), a);
  EXPECT_EQ(record(three), a);
}

TEST(MetricsShard, HistogramSumIsPartitionAndOrderInvariant) {
  MetricsRegistry registry;
  MetricId id = registry.log_histogram("dur", MetricDomain::kDeterministic);
  // Magnitudes chosen so naive double accumulation is order-sensitive in
  // the last ulp: a small value among several near-equal large ones (the
  // run.sim_seconds shape), plus values spanning many exponents.
  const std::vector<double> values = {0.01,   1.0007040469999999,
                                      1.0007, 1.0007040469999998,
                                      1e-9,   3.5e8,
                                      -1e8,   2.25e-7};
  auto record = [&](std::size_t shard_count, bool reversed) {
    std::vector<MetricsShard> shards(shard_count, MetricsShard(&registry));
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::size_t v = reversed ? values.size() - 1 - i : i;
      shards[v % shard_count].observe(id, values[v]);
    }
    MetricsShard merged(&registry);
    for (const MetricsShard& shard : shards) merged.merge_from(shard);
    return merged.cell(id)->sum;
  };
  const double expected = record(1, false);
  for (std::size_t shard_count : {1u, 2u, 3u, 5u}) {
    for (bool reversed : {false, true}) {
      const double sum = record(shard_count, reversed);
      EXPECT_EQ(sum, expected)
          << shard_count << " shards, reversed=" << reversed;
    }
  }
  // The exact sum is also the correctly rounded one (math.fsum agrees),
  // not just consistent across partitionings.
  EXPECT_EQ(expected, 250000003.01210833);
}

TEST(MetricsShard, GaugeMergeTakesMaximum) {
  MetricsRegistry registry;
  MetricId id = registry.gauge("depth");
  MetricsShard a(&registry);
  MetricsShard b(&registry);
  a.set_gauge(id, 7);
  a.set_gauge(id, 3);  // last write smaller than the high-water mark
  b.set_gauge(id, 5);
  MetricsShard ab(&registry);
  ab.merge_from(a);
  ab.merge_from(b);
  MetricsShard ba(&registry);
  ba.merge_from(b);
  ba.merge_from(a);
  // Merge keeps the maximum in both fields so the result is order-free.
  EXPECT_EQ(ab.cell(id)->gauge_max, 7);
  EXPECT_EQ(ab.cell(id)->gauge_last, ba.cell(id)->gauge_last);
  EXPECT_TRUE(ab.cell(id)->gauge_set);
}

TEST(Metrics, LogBinsCoverWideRangeAndInvert) {
  EXPECT_EQ(log_bin(1.0), static_cast<std::size_t>(kLogBinOffset));
  // Zero and negatives clamp into the lowest bin, huge values into the top.
  EXPECT_EQ(log_bin(0.0), 0u);
  EXPECT_EQ(log_bin(-5.0), 0u);
  EXPECT_LT(log_bin(1e30), kLogBins);
  // (values below 2^-16 clamp into bin 0 and are not invertible)
  for (double v : {0.5, 1.0, 3.0, 1024.0, 1e9}) {
    std::size_t bin = log_bin(v);
    EXPECT_LE(log_bin_lower(bin), v) << v;
    if (bin + 1 < kLogBins) {
      EXPECT_LT(v, log_bin_lower(bin + 1)) << v;
    }
  }
}

TEST(MetricsShard, EqualWidthHistogramTracksRangeAndNaN) {
  MetricsRegistry registry;
  MetricId id =
      registry.histogram("lat", MetricDomain::kDeterministic, 0.0, 10.0, 10);
  MetricsShard shard(&registry);
  shard.observe(id, -1.0);                                   // underflow
  shard.observe(id, 0.5);                                    // bin 0
  shard.observe(id, 9.5);                                    // bin 9
  shard.observe(id, 25.0);                                   // overflow
  shard.observe(id, std::nan(""));                           // NaN bucket
  const MetricCell* cell = shard.cell(id);
  ASSERT_NE(cell, nullptr);
  // NaN goes to its own bucket, not into count/sum/min/max.
  EXPECT_EQ(cell->count, 4u);
  EXPECT_EQ(cell->nan_count, 1u);
  // Layout: [underflow, 10 bins, overflow].
  ASSERT_EQ(cell->bins.size(), 12u);
  EXPECT_EQ(cell->bins.front(), 1u);
  EXPECT_EQ(cell->bins[1], 1u);
  EXPECT_EQ(cell->bins[10], 1u);
  EXPECT_EQ(cell->bins.back(), 1u);
  EXPECT_EQ(cell->min, -1.0);
  EXPECT_EQ(cell->max, 25.0);
}

// ---- trace buffer ----------------------------------------------------------

TEST(Trace, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

/// Structural JSON balance check: braces/brackets outside string literals.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Trace, SpansAsyncAndCountersRenderAsTraceEventJson) {
  TraceBuffer buffer(true);
  { WallSpan span(&buffer, "setup", "test"); }
  std::int64_t sim_clock = 100;
  {
    SimSpan span(&buffer, 0, "run 1", "run", [&sim_clock] { return sim_clock; },
                 "{\"run\":1}");
    sim_clock = 5000;
  }
  buffer.async_begin(Track::kSim, 0x42, "pkt 1", "packet", 200);
  buffer.instant(Track::kSim, 0, "hop", "packet", 300);
  buffer.async_end(Track::kSim, 0x42, "pkt 1", "packet", 400);
  buffer.counter(Track::kWall, 0, "runs_completed", buffer.wall_now_ns(), 3.0);
#if EXCOVERY_OBS_ENABLED
  EXPECT_EQ(buffer.size(), 6u);
#else
  // With EXCOVERY_OBS=OFF the RAII spans compile to inert guards; only the
  // four direct buffer calls record.
  EXPECT_EQ(buffer.size(), 4u);
#endif

  std::string json = buffer.to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Both tracks are named via process metadata.
  EXPECT_NE(json.find("excovery wall clock"), std::string::npos);
  EXPECT_NE(json.find("excovery simulated time"), std::string::npos);
  // One of each phase made it through.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
#if EXCOVERY_OBS_ENABLED
  // The complete-span phase and its label come from the spans.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"run\":1"), std::string::npos);
  EXPECT_NE(json.find("run 1"), std::string::npos);
#endif
}

TEST(Trace, DisabledBufferRecordsNothing) {
  TraceBuffer buffer(false);
  { WallSpan span(&buffer, "ignored", "test"); }
  buffer.instant(Track::kWall, 0, "ignored", "test", 1);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(json_balanced(buffer.to_json()));
}

// ---- thread-pool observer --------------------------------------------------

TEST(ObsContext, PoolObserverCountsTasks) {
#if !EXCOVERY_OBS_ENABLED
  GTEST_SKIP() << "thread-pool observer hooks compiled out (EXCOVERY_OBS=OFF)";
#endif
  ObsContext obs;
  {
    ThreadPool pool(2);
    pool.set_observer(obs.pool_observer());
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&ran](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
    pool.set_observer(nullptr);
  }  // pool joined: every on_task callback has run
  MetricCell tasks = obs.merged_cell(obs.ids().pool_tasks);
  // The observer may be cleared while callbacks are in flight, so at least
  // the tasks finished before the clear are counted.
  EXPECT_GT(tasks.count, 0u);
  MetricCell busy = obs.merged_cell(obs.ids().pool_busy_ns);
  EXPECT_EQ(busy.count, tasks.count);
}

// ---- progress reporting ----------------------------------------------------

TEST(ObsContext, ProgressReportLogsThroughSink) {
  ObsConfig config;
  config.progress_interval_s = 0.0;  // log every report
  ObsContext obs(config);
  std::string captured;
  {
    ScopedSink sink([&captured](LogLevel, std::string_view,
                                std::string_view message) {
      captured.append(message);
      captured.push_back('\n');
    });
    LogLevel old_level = Logger::instance().level();
    Logger::instance().set_level(LogLevel::kInfo);
    obs.report_progress(1, 4, 7, 2);
    obs.report_progress(4, 4, 9, 1);
    Logger::instance().set_level(old_level);
  }
  EXPECT_NE(captured.find("runs 1/4"), std::string::npos) << captured;
  EXPECT_NE(captured.find("last=#7 attempt=2"), std::string::npos);
  EXPECT_NE(captured.find("runs 4/4 (100.0%)"), std::string::npos);
}

// ---- package metrics table -------------------------------------------------

TEST(PackageMetrics, ExportWritesTotalsAndLedgerRows) {
  ObsContext obs;
  obs.add(obs.ids().runs_completed, 3);
  obs.ledger().record(2, "net.sent", 10.0);
  obs.ledger().record(1, "net.sent", 12.0);
  obs.ledger().record(1, "bus.published", 4.0);

  storage::ExperimentPackage package;
  ASSERT_TRUE(obs.export_metrics(package).ok());
  std::vector<storage::MetricRow> rows = package.metrics();
  ASSERT_FALSE(rows.empty());
  // Experiment-scope totals first (RunID -1), then ledger in (run, name)
  // order.
  EXPECT_EQ(rows.front().run_id, -1);
  bool found_total = false;
  for (const storage::MetricRow& row : rows) {
    if (row.run_id == -1 && row.name == "runs.completed") {
      EXPECT_EQ(row.value, 3.0);
      found_total = true;
    }
  }
  EXPECT_TRUE(found_total);
  const std::size_t n = rows.size();
  EXPECT_EQ(rows[n - 3].name, "bus.published");
  EXPECT_EQ(rows[n - 3].run_id, 1);
  EXPECT_EQ(rows[n - 2].name, "net.sent");
  EXPECT_EQ(rows[n - 2].run_id, 1);
  EXPECT_EQ(rows[n - 1].run_id, 2);
  EXPECT_EQ(rows[n - 1].value, 10.0);
}

TEST(PackageMetrics, LegacyDatabaseWithoutMetricsTableLoads) {
  // A package written before the Metrics table existed: the eight Table I
  // tables only.  It must load, and add_metric must materialise the table.
  storage::Database db;
  for (const char* name :
       {"ExperimentInfo", "Logs", "EEFiles", "ExperimentMeasurements",
        "RunInfos", "ExtraRunMeasurements", "Events", "Packets"}) {
    storage::TableSchema schema;
    schema.name = name;
    schema.columns = {{"RunID", ValueType::kInt, false}};
    ASSERT_TRUE(db.create_table(std::move(schema)).ok());
  }
  Result<storage::ExperimentPackage> loaded =
      storage::ExperimentPackage::from_database(std::move(db));
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value().database().table(std::string("Metrics")), nullptr);
  EXPECT_TRUE(loaded.value().metrics().empty());
  ASSERT_TRUE(loaded.value().add_metric(1, "net.sent", 5.0).ok());
  std::vector<storage::MetricRow> rows = loaded.value().metrics();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "net.sent");
  EXPECT_EQ(rows[0].value, 5.0);
}

// ---- end to end ------------------------------------------------------------

struct Rig {
  ExperimentDescription description;
  std::unique_ptr<SimPlatform> platform;
};

Result<Rig> make_rig(int replications) {
  TwoPartyOptions options;
  options.replications = replications;
  options.environment_count = 1;
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 42;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<SimPlatform> platform,
                       SimPlatform::create(description, std::move(config)));
  return Rig{std::move(description), std::move(platform)};
}

Result<storage::ExperimentPackage> run_experiment(Rig& rig,
                                                  MasterOptions options) {
  core::ExperiMaster master(rig.description, *rig.platform,
                            std::move(options));
  return master.execute();
}

TEST(ObsEndToEnd, PackageBytesIdenticalWithAndWithoutObs) {
  Result<Rig> plain = make_rig(3);
  Result<Rig> observed = make_rig(3);
  ASSERT_TRUE(plain.ok() && observed.ok());

  Result<storage::ExperimentPackage> baseline =
      run_experiment(plain.value(), {});
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();

  ObsConfig config;
  config.packet_trace = true;  // heaviest instrumentation on
  ObsContext obs(config);
  MasterOptions with_obs;
  with_obs.obs = &obs;
  Result<storage::ExperimentPackage> instrumented =
      run_experiment(observed.value(), std::move(with_obs));
  ASSERT_TRUE(instrumented.ok()) << instrumented.error().to_string();

  EXPECT_EQ(baseline.value().database().serialize(),
            instrumented.value().database().serialize());

#if EXCOVERY_OBS_ENABLED
  // The run actually got observed.
  EXPECT_EQ(obs.merged_cell(obs.ids().runs_completed).count, 3u);
  EXPECT_EQ(obs.merged_cell(obs.ids().runs_attempts).count, 3u);
  EXPECT_GT(obs.merged_cell(obs.ids().net_sent).count, 0u);
  EXPECT_GT(obs.merged_cell(obs.ids().bus_published).count, 0u);
  EXPECT_GT(obs.ledger().size(), 0u);
  // Packet lifecycles landed on the sim track.
  std::string json = obs.trace().to_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("pkt "), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
#endif  // the byte-identity half above holds in both configurations
}

TEST(ObsEndToEnd, DeterministicMetricsIdenticalAcrossWorkerCounts) {
  std::vector<std::string> rendered;
  std::vector<Bytes> packages;
  for (std::size_t workers : {1u, 3u}) {
    Result<Rig> rig = make_rig(4);
    ASSERT_TRUE(rig.ok());
    ObsContext obs;
    MasterOptions options;
    options.obs = &obs;
    options.run_workers = workers;
    Result<storage::ExperimentPackage> package =
        run_experiment(rig.value(), std::move(options));
    ASSERT_TRUE(package.ok()) << package.error().to_string();
    packages.push_back(package.value().database().serialize());
    rendered.push_back(obs.format_deterministic_metrics());
#if EXCOVERY_OBS_ENABLED
    EXPECT_EQ(obs.merged_cell(obs.ids().runs_completed).count, 4u);
#endif
  }
  EXPECT_EQ(packages[0], packages[1]);
  EXPECT_EQ(rendered[0], rendered[1]) << rendered[0];
#if EXCOVERY_OBS_ENABLED
  // Sanity: the rendering actually carries per-run ledger lines.
  EXPECT_NE(rendered[0].find("run/1/net.sent="), std::string::npos);
  EXPECT_NE(rendered[0].find("runs.completed=4"), std::string::npos);
#endif
}

TEST(ObsEndToEnd, RetriedRunsCountRetriesWithoutDuplicatingLedger) {
  std::vector<std::string> rendered;
  for (std::size_t workers : {1u, 2u}) {
    Result<Rig> rig = make_rig(3);
    ASSERT_TRUE(rig.ok());
    ObsContext obs;
    MasterOptions options;
    options.obs = &obs;
    options.run_workers = workers;
    options.abort_hook = [](std::int64_t run_id, int attempt) {
      return run_id == 2 && attempt == 1;  // first attempt of run 2 dies
    };
    Result<storage::ExperimentPackage> package =
        run_experiment(rig.value(), std::move(options));
    ASSERT_TRUE(package.ok()) << package.error().to_string();
    rendered.push_back(obs.format_deterministic_metrics());
#if EXCOVERY_OBS_ENABLED
    EXPECT_EQ(obs.merged_cell(obs.ids().runs_completed).count, 3u);
    EXPECT_EQ(obs.merged_cell(obs.ids().runs_attempts).count, 4u);
    EXPECT_EQ(obs.merged_cell(obs.ids().runs_retries).count, 1u);
    // Exactly one ledger entry per (run, name): the aborted attempt did not
    // record.
    std::size_t first = rendered.back().find("run/2/net.sent=");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(rendered.back().find("run/2/net.sent=", first + 1),
              std::string::npos);
#endif
  }
  EXPECT_EQ(rendered[0], rendered[1]);
}

TEST(ObsEndToEnd, MetricsJsonAndExportAreWellFormed) {
  Result<Rig> rig = make_rig(3);
  ASSERT_TRUE(rig.ok());
  ObsContext obs;
  MasterOptions options;
  options.obs = &obs;
  Result<storage::ExperimentPackage> package =
      run_experiment(rig.value(), std::move(options));
  ASSERT_TRUE(package.ok());

  std::string json = obs.metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"run_summaries\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\""), std::string::npos);

  // Export is explicit and adds rows to the (otherwise empty) table.
  EXPECT_TRUE(package.value().metrics().empty());
  ASSERT_TRUE(obs.export_metrics(package.value()).ok());
  EXPECT_FALSE(package.value().metrics().empty());
}

}  // namespace
}  // namespace excovery::obs
