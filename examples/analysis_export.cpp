// Analysis & export: run two small experiments, archive both in a level-4
// repository, compare them with cross-experiment queries, and export one
// run's conditioned measurements as CSV (the "reusable data access
// functions" the unified storage of §IV-F enables).
//
//   $ ./analysis_export [output-dir]
#include <cstdio>

#include "common/strings.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"
#include "storage/repository.hpp"
#include "storage/warehouse.hpp"

using namespace excovery;

namespace {

Result<storage::ExperimentPackage> run_protocol(const std::string& protocol) {
  core::scenario::TwoPartyOptions options;
  options.protocol = protocol;
  if (protocol == "slp") {
    options.scm_count = 1;
    options.architecture = "three-party";
  }
  options.replications = 5;
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 11;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::SimPlatform> platform,
      core::SimPlatform::create(description, std::move(config)));
  core::ExperiMaster master(description, *platform);
  return master.execute();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "excovery-results";

  Result<storage::Repository> repo = storage::Repository::open(dir);
  if (!repo.ok()) {
    std::fprintf(stderr, "%s\n", repo.error().to_string().c_str());
    return 1;
  }

  for (const char* protocol : {"mdns", "slp"}) {
    std::string id = std::string("export-demo-") + protocol;
    if (repo.value().contains(id)) continue;  // already archived
    Result<storage::ExperimentPackage> package = run_protocol(protocol);
    if (!package.ok()) {
      std::fprintf(stderr, "%s: %s\n", protocol,
                   package.error().to_string().c_str());
      return 1;
    }
    if (Status stored = repo.value().store(id, package.value());
        !stored.ok()) {
      std::fprintf(stderr, "store %s: %s\n", id.c_str(),
                   stored.error().to_string().c_str());
      return 1;
    }
  }

  // Level-4 comparison across everything in the repository.
  std::printf("=== repository %s ===\n", dir.c_str());
  Result<std::vector<storage::Repository::Summary>> summaries =
      repo.value().summaries();
  if (summaries.ok()) {
    std::printf("%-28s %-24s %6s %8s %8s\n", "experiment", "name", "runs",
                "events", "packets");
    for (const auto& summary : summaries.value()) {
      std::printf("%-28s %-24s %6zu %8zu %8zu\n",
                  summary.experiment_id.c_str(), summary.name.c_str(),
                  summary.runs, summary.events, summary.packets);
    }
  }

  // Cross-experiment query: mean first-discovery latency per experiment.
  std::printf("\nmean first-discovery latency by experiment:\n");
  for (const std::string& id : repo.value().experiment_ids()) {
    Result<storage::ExperimentPackage> package = repo.value().fetch(id);
    if (!package.ok()) continue;
    Result<std::vector<double>> latencies =
        stats::first_latencies(package.value());
    if (!latencies.ok() || latencies.value().empty()) continue;
    std::printf("  %-28s %.3fs over %zu runs\n", id.c_str(),
                stats::mean(latencies.value()), latencies.value().size());
  }

  // Dimensional warehouse roll-up across the whole repository (§IV-F's
  // anticipated data-warehouse structure).
  storage::Warehouse warehouse;
  for (const std::string& id : repo.value().experiment_ids()) {
    Result<storage::ExperimentPackage> package = repo.value().fetch(id);
    if (package.ok()) (void)warehouse.add(id, package.value());
  }
  std::printf("\n=== warehouse: sd_service_add facts per experiment ===\n");
  for (const std::string& line :
       strings::split(warehouse.rollup_by_type(), '\n')) {
    if (line.find("sd_service_add") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
  }
  for (const std::string& id : repo.value().experiment_ids()) {
    Result<double> t_r =
        warehouse.mean_interval(id, "sd_start_search", "sd_service_add");
    if (t_r.ok()) {
      std::printf("  %-28s mean t_R (star-schema query) %.3fs\n", id.c_str(),
                  t_r.value());
    }
  }

  // CSV export of one experiment's conditioned event list.
  Result<storage::ExperimentPackage> package =
      repo.value().fetch("export-demo-mdns");
  if (package.ok()) {
    std::printf("\n=== export-demo-mdns events.csv (first 25 rows) ===\n");
    std::printf("run_id,node_id,common_time,event_type,parameter\n");
    Result<std::vector<storage::EventRow>> events =
        package.value().all_events();
    if (events.ok()) {
      int shown = 0;
      for (const storage::EventRow& event : events.value()) {
        if (shown++ >= 25) break;
        std::printf("%lld,%s,%.9f,%s,%s\n",
                    static_cast<long long>(event.run_id),
                    csv_escape(event.node_id).c_str(), event.common_time,
                    csv_escape(event.event_type).c_str(),
                    csv_escape(event.parameter).c_str());
      }
      std::printf("... (%zu rows total)\n", events.value().size());
    }
  }
  return 0;
}
