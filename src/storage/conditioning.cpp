#include "storage/conditioning.hpp"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace excovery::storage {

double to_common_time(std::int64_t local_time_ns, std::int64_t offset_ns) {
  return static_cast<double>(local_time_ns - offset_ns) / 1e9;
}

namespace {

/// Offset estimates keyed by run id, one map per node — replaces the
/// per-event linear scan over every sync measurement.
using OffsetsByRun = std::unordered_map<std::int64_t, std::int64_t>;

/// Everything one node contributes to the package, built independently of
/// every other node.  Blob lists keep the node-store traversal order
/// (run-scoped blobs before plugin data) so the merged table rows match a
/// sequential pass exactly.
struct NodeShard {
  std::string node_name;
  const NodeStore* store = nullptr;
  std::vector<EventRow> events;
  std::vector<PacketRow> packets;
  std::vector<const NamedBlob*> experiment_blobs;
  std::vector<const NamedBlob*> run_blobs;
};

void build_shard(NodeShard& shard, const OffsetsByRun* offsets,
                 const std::unordered_set<std::int64_t>* completed_runs) {
  auto include_run = [&](std::int64_t run_id) {
    return completed_runs == nullptr || completed_runs->count(run_id) != 0;
  };
  auto offset_for = [&](std::int64_t run_id) -> std::int64_t {
    if (!offsets) return 0;
    auto it = offsets->find(run_id);
    return it == offsets->end() ? 0 : it->second;
  };
  shard.events.reserve(shard.store->events().size());
  shard.packets.reserve(shard.store->packets().size());
  // Events: split into single entries on the common time base.
  for (const RawEvent& event : shard.store->events()) {
    if (!include_run(event.run_id)) continue;
    EventRow row;
    row.run_id = event.run_id;
    row.node_id = shard.node_name;
    row.common_time =
        to_common_time(event.local_time_ns, offset_for(event.run_id));
    row.event_type = event.type;
    row.parameter = event.parameter.to_text();
    shard.events.push_back(std::move(row));
  }
  // Packets.
  for (const RawPacket& packet : shard.store->packets()) {
    if (!include_run(packet.run_id)) continue;
    PacketRow row;
    row.run_id = packet.run_id;
    row.node_id = shard.node_name;
    row.common_time =
        to_common_time(packet.local_time_ns, offset_for(packet.run_id));
    row.src_node_id = packet.src_node;
    row.data = packet.data;
    shard.packets.push_back(std::move(row));
  }
  // Named blobs: experiment-scoped go to ExperimentMeasurements,
  // run-scoped (and plugin data) to ExtraRunMeasurements.
  auto classify = [&](const std::vector<NamedBlob>& blobs) {
    for (const NamedBlob& blob : blobs) {
      if (blob.run_id < 0) {
        shard.experiment_blobs.push_back(&blob);
      } else if (include_run(blob.run_id)) {
        shard.run_blobs.push_back(&blob);
      }
    }
  };
  classify(shard.store->blobs());
  classify(shard.store->plugin_data());
}

}  // namespace

Result<ExperimentPackage> condition(const Level2Store& level2,
                                    const std::string& description_xml,
                                    const ConditioningOptions& options) {
  ExperimentPackage package;
  EXC_TRY(package.set_experiment_info(description_xml, options.experiment_name,
                                      options.comment));

  std::unordered_set<std::int64_t> completed(
      level2.completed_runs().begin(), level2.completed_runs().end());
  const std::unordered_set<std::int64_t>* completed_filter =
      options.completed_runs_only ? &completed : nullptr;
  auto include_run = [&](std::int64_t run_id) {
    return completed_filter == nullptr ||
           completed_filter->count(run_id) != 0;
  };

  // RunInfos from the master's sync measurements; at the same time hoist
  // the offset estimates into per-(run, node) caches (first sync per key
  // wins, like Level2Store::offset_ns).
  std::unordered_map<std::string, OffsetsByRun> offsets_by_node;
  for (const SyncMeasurement& sync : level2.syncs()) {
    offsets_by_node[sync.node].emplace(sync.run_id, sync.offset_ns);
    if (!include_run(sync.run_id)) continue;
    RunInfoRow info;
    info.run_id = sync.run_id;
    info.node_id = sync.node;
    info.start_time = static_cast<double>(sync.run_start_ns) / 1e9;
    info.time_diff = static_cast<double>(sync.offset_ns) / 1e9;
    EXC_TRY(package.add_run_info(info));
  }

  // Resolve the node stores up front; a name without a store is a corrupt
  // level-2 hierarchy, not undefined behaviour.
  std::vector<NodeShard> shards;
  for (const std::string& node_name : level2.node_names()) {
    NodeShard shard;
    shard.node_name = node_name;
    shard.store = level2.find_node(node_name);
    if (shard.store == nullptr) {
      return err_not_found("level-2 store lists node '" + node_name +
                           "' but holds no data for it");
    }
    shards.push_back(std::move(shard));
  }

  auto offsets_for = [&](const std::string& node) -> const OffsetsByRun* {
    auto it = offsets_by_node.find(node);
    return it == offsets_by_node.end() ? nullptr : &it->second;
  };
  const auto phase_start = std::chrono::steady_clock::now();
  auto report_phase = [&](std::string_view phase, auto since) {
    if (!options.timing_hook) return;
    options.timing_hook(
        phase, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - since)
                   .count());
  };

  if (options.workers == 1 || shards.size() <= 1) {
    for (NodeShard& shard : shards) {
      build_shard(shard, offsets_for(shard.node_name), completed_filter);
    }
  } else {
    ThreadPool pool(options.workers);
    pool.parallel_for(shards.size(), [&](std::size_t i) {
      build_shard(shards[i], offsets_for(shards[i].node_name),
                  completed_filter);
    });
  }
  report_phase("build_shards", phase_start);
  const auto merge_start = std::chrono::steady_clock::now();

  // Deterministic merge in node order: shard contents are appended exactly
  // where a sequential pass would have inserted them, including the global
  // experiment-measurement id sequence.
  std::int64_t measurement_id = 1;
  for (NodeShard& shard : shards) {
    std::string node_log = shard.store->log();
    if (!node_log.empty()) {
      EXC_TRY(package.add_log(shard.node_name, std::move(node_log)));
    }
    for (const EventRow& row : shard.events) {
      EXC_TRY(package.add_event(row));
    }
    for (const PacketRow& row : shard.packets) {
      EXC_TRY(package.add_packet(row));
    }
    for (const NamedBlob* blob : shard.experiment_blobs) {
      EXC_TRY(package.add_experiment_measurement(measurement_id++,
                                                 shard.node_name, blob->name,
                                                 blob->content));
    }
    for (const NamedBlob* blob : shard.run_blobs) {
      EXC_TRY(package.add_extra_run_measurement(blob->run_id, shard.node_name,
                                                blob->name, blob->content));
    }
  }
  report_phase("merge", merge_start);
  return package;
}

}  // namespace excovery::storage
