# Empty compiler generated dependencies file for bench_case_responsiveness.
# This may be replaced when dependencies are built.
