# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_sd_mdns[1]_include.cmake")
include("/root/repo/build/tests/test_sd_slp[1]_include.cmake")
include("/root/repo/build/tests/test_sd_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_core_description[1]_include.cmake")
include("/root/repo/build/tests/test_core_plan[1]_include.cmake")
include("/root/repo/build/tests/test_core_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_core_master[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_net_contention[1]_include.cmake")
include("/root/repo/build/tests/test_sd_multi[1]_include.cmake")
