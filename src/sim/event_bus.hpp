// Topic-based publish/subscribe bus.
//
// ExCovery's flow control (`wait_for_event`, §IV-C2) is built on observing
// events by name, origin and parameters.  The bus carries *framework*
// events: process-interpreter waits subscribe here, action implementations
// and protocol stacks publish here.  (Network packets do NOT travel on this
// bus; they go through the network simulator.)
//
// Dispatch is indexed: subscriber names are interned to dense ids and each
// name owns its own subscriber list (wildcards live in a separate list), so
// `publish` costs one name lookup plus the matching subscribers — not a
// string compare against every subscriber on the bus.  Matching named and
// wildcard subscribers are merged by subscription id, which reproduces the
// seed's subscription-order invocation exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/obs_switch.hpp"
#include "common/value.hpp"
#include "sim/time.hpp"

namespace excovery::sim {

/// An occurrence of a named event at a node.
struct BusEvent {
  SimTime time;            ///< global (reference) time of occurrence
  std::string node;        ///< originating node identifier
  std::string name;        ///< event type, e.g. "sd_service_add"
  Value parameter;         ///< optional parameter (service id, run id, ...)
};

/// Subscription handle.
class SubscriptionHandle {
 public:
  SubscriptionHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class EventBus;
  explicit SubscriptionHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Synchronous pub/sub with wildcard subscription.  Callbacks run inline at
/// publish time (within the discrete-event step), preserving determinism.
/// Subscribers added during a publish take effect for the next publish; a
/// subscriber removed during a publish (at any nesting depth) is never
/// invoked again once the unsubscribe call returns.
class EventBus {
 public:
  using Callback = std::function<void(const BusEvent&)>;

  /// Subscribe to events with a given name; empty name = all events.
  SubscriptionHandle subscribe(std::string name, Callback fn);
  void unsubscribe(SubscriptionHandle handle);

  void publish(const BusEvent& event);

  /// Number of events published so far.
  std::uint64_t published() const noexcept { return published_; }
  /// Subscriber callbacks invoked across all publishes (fan-out; 0 when
  /// observability hooks are compiled out).
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Subscriber {
    std::uint64_t id;
    Callback fn;
    bool removed = false;
  };

  /// Per-name subscriber lists are deques: reentrant subscription appends
  /// must not relocate subscribers mid-invocation.
  using SubscriberList = std::deque<Subscriber>;

  /// Sentinel name index meaning "the wildcard list".
  static constexpr std::uint32_t kWildcardIndex = 0xFFFFFFFFu;

  SubscriberList& list_for(std::uint32_t name_index) noexcept {
    return name_index == kWildcardIndex ? wildcard_ : by_name_[name_index];
  }
  void compact();

  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
  std::uint64_t dispatched_ = 0;
  std::unordered_map<std::string, std::uint32_t> name_index_;
  std::vector<SubscriberList> by_name_;  ///< indexed by interned name id
  SubscriberList wildcard_;
  /// Subscription id -> owning list (interned name or wildcard sentinel).
  std::unordered_map<std::uint64_t, std::uint32_t> id_to_list_;
  int publish_depth_ = 0;
  bool needs_compaction_ = false;
};

}  // namespace excovery::sim
