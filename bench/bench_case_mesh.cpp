// Case study [26] — "Modeling responsiveness of decentralized service
// discovery in wireless mesh networks" (Dittrich et al., MMB&DFT 2014).
//
// Regenerated shapes on the simulated mesh:
//   (a) responsiveness vs hop distance between SU and SM (chain topology
//       with lossy links) — decreases with distance;
//   (b) responsiveness vs number of providers that must ALL be found —
//       decreases with n (product-like composition of per-SM success);
//   (c) responsiveness vs background load (Fig. 5/7 traffic generator on a
//       shared mesh) — decreases as offered load grows.
#include "bench_common.hpp"

using namespace excovery;

namespace {

double responsiveness_of(const bench::Executed& executed, double deadline,
                         std::size_t required) {
  stats::Proportion p = bench::must(
      stats::responsiveness(executed.package, deadline, required),
      "responsiveness");
  return p.estimate;
}

}  // namespace

int main(int argc, char** argv) {
  int replications = argc > 1 ? std::atoi(argv[1]) : 25;
  bench::banner("bench_case_mesh",
                "case study [26]: responsiveness of decentralised SD in "
                "wireless mesh networks");

  // (a) hop distance sweep on a lossy chain.
  std::printf("\n(a) responsiveness vs hop distance (per-hop loss 15%%, "
              "deadline 3 s, %d reps):\n", replications);
  std::printf("    %-6s %-16s %s\n", "hops", "responsiveness",
              "mean t_R");
  for (int spacing : {1, 2, 3, 4}) {
    core::scenario::TwoPartyOptions options;
    options.replications = replications;
    options.environment_count = 0;
    options.deadline_s = 3.0;
    core::scenario::TopologyOptions topology;
    topology.kind = core::scenario::TopologyKind::kChain;
    topology.chain_spacing = spacing;
    topology.link.loss = 0.15;
    bench::Executed executed = bench::must(
        bench::execute(options, 42, topology), "chain experiment");
    std::vector<double> latencies = bench::must(
        stats::first_latencies(executed.package), "latencies");
    std::printf("    %-6d %-16.2f %.3fs\n", spacing,
                responsiveness_of(executed, 3.0, 1),
                stats::mean(latencies));
  }

  // (b) number of providers that must all be discovered.  This cell sweep
  // needs more replications than the others: the quantity is a product of
  // per-SM successes, so its variance is the largest.
  std::printf("\n(b) responsiveness vs #SMs that must ALL be found "
              "(loss 0.3 at the SU, deadline 3 s, %dx reps):\n",
              3 * replications);
  std::printf("    %-6s %s\n", "#SMs", "responsiveness(all found)");
  for (int sms : {1, 2, 3, 4}) {
    core::scenario::TwoPartyOptions options;
    options.sm_count = sms;
    options.replications = 3 * replications;
    options.environment_count = 0;
    options.deadline_s = 3.0;
    options.loss_levels = {0.3};
    bench::Executed executed =
        bench::must(bench::execute(options), "provider experiment");
    std::printf("    %-6d %.2f\n", sms,
                responsiveness_of(executed, 3.0,
                                  static_cast<std::size_t>(sms)));
  }

  // (c) background load on a shared grid mesh.
  std::printf("\n(c) responsiveness vs background load (grid mesh, 6 env "
              "nodes, deadline 2 s):\n");
  std::printf("    %-10s %-16s %s\n", "load kbps", "responsiveness",
              "mean t_R");
  for (std::int64_t bw : {0, 200, 800, 2000}) {
    core::scenario::TwoPartyOptions options;
    options.replications = replications;
    options.environment_count = 6;
    options.deadline_s = 2.0;
    if (bw > 0) {
      options.pairs_levels = {3};
      options.bw_levels = {bw};
    }
    core::scenario::TopologyOptions topology;
    topology.kind = core::scenario::TopologyKind::kGrid;
    topology.link.bandwidth_bps = 1e6;  // narrow links: load matters
    topology.link.loss = 0.05;
    bench::Executed executed = bench::must(
        bench::execute(options, 42, topology), "load experiment");
    std::vector<double> latencies = bench::must(
        stats::first_latencies(executed.package), "latencies");
    std::printf("    %-10lld %-16.2f %.3fs\n", static_cast<long long>(bw),
                responsiveness_of(executed, 2.0, 1),
                stats::mean(latencies));
  }

  std::printf(
      "\nshape check vs [26]: responsiveness falls with hop distance, with\n"
      "the number of providers required, and with background load.\n");
  return 0;
}
