# Empty dependencies file for excovery_net.
# This may be replaced when dependencies are built.
