#include "net/routing.hpp"

#include <algorithm>

namespace excovery::net {

RoutingTable::RoutingTable(const Topology& topology) { rebuild(topology); }

void RoutingTable::rebuild(const Topology& topology) {
  size_ = topology.node_count();
  next_hop_.assign(size_ * size_, kInvalidNode);
  hops_.assign(size_ * size_, -1);

  // Adjacency lists, sorted for deterministic BFS order.  The lists (and
  // the per-source scratch below) live on the table and keep their
  // capacity between rebuilds.
  if (scratch_adjacency_.size() < size_) scratch_adjacency_.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) scratch_adjacency_[i].clear();
  for (const Link& link : topology.links()) {
    scratch_adjacency_[link.a].push_back(link.b);
    scratch_adjacency_[link.b].push_back(link.a);
  }
  for (std::size_t i = 0; i < size_; ++i) {
    std::sort(scratch_adjacency_[i].begin(), scratch_adjacency_[i].end());
  }

  scratch_frontier_.reserve(size_);

  // BFS from every source.
  for (NodeId source = 0; source < size_; ++source) {
    scratch_parent_.assign(size_, kInvalidNode);
    scratch_dist_.assign(size_, -1);
    scratch_frontier_.clear();
    scratch_frontier_.push_back(source);
    scratch_dist_[source] = 0;
    for (std::size_t head = 0; head < scratch_frontier_.size(); ++head) {
      NodeId current = scratch_frontier_[head];
      for (NodeId next : scratch_adjacency_[current]) {
        if (scratch_dist_[next] < 0) {
          scratch_dist_[next] =
              static_cast<std::int16_t>(scratch_dist_[current] + 1);
          scratch_parent_[next] = current;
          scratch_frontier_.push_back(next);
        }
      }
    }
    for (NodeId target = 0; target < size_; ++target) {
      hops_[index(source, target)] = scratch_dist_[target];
      if (target == source || scratch_dist_[target] < 0) continue;
      // Walk back from target to the neighbour of source.
      NodeId walk = target;
      while (scratch_parent_[walk] != source) walk = scratch_parent_[walk];
      next_hop_[index(source, target)] = walk;
    }
  }
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return kInvalidNode;
  return next_hop_[index(from, to)];
}

int RoutingTable::hop_count(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return -1;
  return hops_[index(from, to)];
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from >= size_ || to >= size_) return out;
  if (from == to) return {from};
  if (hop_count(from, to) < 0) return out;
  out.push_back(from);
  NodeId current = from;
  while (current != to) {
    current = next_hop(current, to);
    if (current == kInvalidNode) return {};
    out.push_back(current);
  }
  return out;
}

}  // namespace excovery::net
