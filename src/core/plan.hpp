// Treatment plan generation (§IV-C1).
//
// "To execute the overall experiment and its individual runs from the
// abstract experiment description, ExCovery generates treatment plans from
// replications, the factors and their levels.  Plans are OFAT if no custom
// factor level variation plan is given."
//
// OFAT ordering: "In an OFAT design the first factor varies least often
// during execution while the last factor changes every run" (§IV-C).
// Blocking factors are hoisted outermost (blocks group observations taken
// under similar conditions, §II-A3); factors with usage "random" have their
// level order randomised from a seed-derived stream, so the plan is fully
// reproducible (§IV-C1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/description.hpp"

namespace excovery::core {

/// One treatment: the complete assignment of levels to factors
/// ("the entire description of what can be applied to the treatment
/// factors of an experimental unit").
struct Treatment {
  std::map<std::string, Value> levels;  ///< factor id -> level value

  Result<Value> level(const std::string& factor_id) const;
  /// Level coerced to int/double/string.
  Result<std::int64_t> level_int(const std::string& factor_id) const;
  Result<double> level_double(const std::string& factor_id) const;
  Result<std::string> level_text(const std::string& factor_id) const;
};

/// The resolved actor mapping of a run: actor id -> abstract node ids.
using ActorMap = std::map<std::string, std::vector<std::string>>;

/// One experiment run: a treatment plus a replication index.
struct RunSpec {
  std::int64_t run_id = 0;     ///< 1-based, sequential in execution order
  std::int64_t treatment_index = 0;
  int replication = 0;         ///< 0-based replication of this treatment
  Treatment treatment;
  ActorMap actor_map;

  /// All abstract nodes acting in this run (union over actors), sorted and
  /// deduplicated.  Computed once and cached; TreatmentPlan::generate warms
  /// the cache so concurrent readers never race on the first call.  Mutating
  /// `actor_map` afterwards requires `invalidate_acting_nodes()`.
  const std::vector<std::string>& acting_nodes() const;
  void invalidate_acting_nodes() { acting_nodes_cached_ = false; }

 private:
  mutable std::vector<std::string> acting_nodes_cache_;
  mutable bool acting_nodes_cached_ = false;
};

class TreatmentPlan {
 public:
  /// Generate the full OFAT plan from a description.
  static Result<TreatmentPlan> generate(
      const ExperimentDescription& description);

  const std::vector<RunSpec>& runs() const noexcept { return runs_; }
  std::size_t run_count() const noexcept { return runs_.size(); }
  std::size_t treatment_count() const noexcept { return treatment_count_; }
  int replications() const noexcept { return replications_; }

  /// Runs not yet marked complete in `completed` (resume support, §VII:
  /// "recovers from failures by resuming aborted runs").
  std::vector<const RunSpec*> remaining(
      const std::vector<std::int64_t>& completed) const;

  /// Human-readable plan head for inspection tooling.
  std::string format(std::size_t max_rows = 10) const;

 private:
  std::vector<RunSpec> runs_;
  std::size_t treatment_count_ = 0;
  int replications_ = 1;
};

}  // namespace excovery::core
