// Responsiveness study: the case-study experiment the paper's prototype was
// built for (§VI, refs [25]/[26]) — "the probability that a number of SMs
// is found within a deadline".
//
//   $ ./responsiveness_study [replications]
//
// Sweeps a message-loss factor across {0, 0.1, ..., 0.5} on the SU's node
// (a §IV-D manipulation process driven by a factor reference) and reports
// responsiveness for several deadlines, with Wilson 95% bounds, plus the
// discovery-latency distribution.  Results are archived into a level-4
// repository under ./excovery-results.
#include <cstdio>
#include <cstdlib>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"
#include "storage/repository.hpp"

using namespace excovery;

int main(int argc, char** argv) {
  int replications = argc > 1 ? std::atoi(argv[1]) : 30;
  if (replications < 1) replications = 30;

  core::scenario::TwoPartyOptions options;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 2;
  options.replications = replications;
  options.deadline_s = 8.0;
  options.loss_levels = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  if (!description.ok()) {
    std::fprintf(stderr, "%s\n", description.error().to_string().c_str());
    return 1;
  }
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 7;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  if (!platform.ok()) {
    std::fprintf(stderr, "%s\n", platform.error().to_string().c_str());
    return 1;
  }

  core::ExperiMaster master(description.value(), *platform.value());
  std::printf("executing %zu runs (%zu treatments x %d replications)...\n",
              master.plan().run_count(), master.plan().treatment_count(),
              replications);
  Result<storage::ExperimentPackage> package = master.execute();
  if (!package.ok()) {
    std::fprintf(stderr, "%s\n", package.error().to_string().c_str());
    return 1;
  }

  // Group run outcomes by the loss level of their treatment (OFAT order:
  // loss levels in sequence, `replications` runs each).
  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  if (!discoveries.ok()) {
    std::fprintf(stderr, "%s\n", discoveries.error().to_string().c_str());
    return 1;
  }

  const double deadlines[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  std::printf(
      "\nresponsiveness P(SM found within deadline) by injected loss:\n");
  std::printf("%-6s", "loss");
  for (double deadline : deadlines) std::printf("  <=%.1fs          ", deadline);
  std::printf("\n");
  for (std::size_t level = 0; level < options.loss_levels.size(); ++level) {
    std::printf("%-6.2f", options.loss_levels[level]);
    std::int64_t lo = static_cast<std::int64_t>(level) * replications + 1;
    std::int64_t hi = lo + replications - 1;
    for (double deadline : deadlines) {
      std::size_t hits = 0;
      std::size_t trials = 0;
      for (const stats::RunDiscovery& run : discoveries.value()) {
        if (run.run_id < lo || run.run_id > hi) continue;
        ++trials;
        for (const auto& [provider, latency] : run.latencies) {
          if (latency <= deadline) {
            ++hits;
            break;
          }
        }
      }
      stats::Proportion p = stats::wilson(hits, trials);
      std::printf("  %.2f [%.2f-%.2f]", p.estimate, p.lower, p.upper);
    }
    std::printf("\n");
  }

  Result<std::vector<double>> latencies =
      stats::discovery_latencies(package.value());
  if (latencies.ok() && !latencies.value().empty()) {
    std::printf("\ndiscovery latency distribution (all %zu discoveries):\n",
                latencies.value().size());
    std::printf("  mean %.3fs  median %.3fs  p95 %.3fs  max %.3fs\n",
                stats::mean(latencies.value()),
                stats::median(latencies.value()),
                stats::percentile(latencies.value(), 95),
                stats::max_of(latencies.value()));
    stats::Histogram histogram(0.0, 8.0, 16);
    for (double latency : latencies.value()) histogram.add(latency);
    std::printf("%s", histogram.format(30).c_str());
  }

  // Archive into the level-4 repository for later comparison.
  Result<storage::Repository> repo =
      storage::Repository::open("excovery-results");
  if (repo.ok()) {
    std::string id = "responsiveness-loss-sweep";
    if (!repo.value().contains(id)) {
      Status stored = repo.value().store(id, package.value());
      std::printf("\narchived as '%s' in ./excovery-results: %s\n",
                  id.c_str(), stored.ok() ? "ok" : "failed");
    }
  }
  return 0;
}
