#include "storage/level2.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/bytes.hpp"

namespace excovery::storage {

namespace {

/// Move every element of `run_id` out of `src` (order preserved),
/// compacting `src` in place.
template <typename T>
std::vector<T> take_run(std::vector<T>& src, std::int64_t run_id) {
  std::vector<T> out;
  auto keep = src.begin();
  for (auto it = src.begin(); it != src.end(); ++it) {
    if (it->run_id == run_id) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  src.erase(keep, src.end());
  return out;
}

/// Insert `src` where ascending run-id order dictates: before the first
/// element of a later run.  Run-scoped elements are kept in run order and
/// experiment-scoped ones (run_id -1) only precede run data, so the common
/// case — nothing from a later run yet — is a plain append.
template <typename T>
void insert_run_ordered(std::vector<T>& dst, std::vector<T>&& src,
                        std::int64_t run_id) {
  if (src.empty()) return;
  auto pos = dst.end();
  if (!dst.empty() && dst.back().run_id > run_id) {
    pos = std::find_if(dst.begin(), dst.end(), [run_id](const T& item) {
      return item.run_id > run_id;
    });
  }
  dst.insert(pos, std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.end()));
}

}  // namespace

void NodeStore::set_experiment_blob(const std::string& name,
                                    std::string content) {
  for (NamedBlob& blob : blobs_) {
    if (blob.run_id < 0 && blob.name == name) {
      blob.content = std::move(content);
      return;
    }
  }
  blobs_.push_back({-1, name, std::move(content)});
}

std::string NodeStore::log() const {
  std::string out;
  std::size_t total = 0;
  for (const LogSegment& segment : log_segments_) total += segment.text.size();
  out.reserve(total);
  for (const LogSegment& segment : log_segments_) out += segment.text;
  return out;
}

void NodeStore::discard_run(std::int64_t run_id) {
  auto run_matches = [run_id](const auto& item) {
    return item.run_id == run_id;
  };
  events_.erase(std::remove_if(events_.begin(), events_.end(), run_matches),
                events_.end());
  packets_.erase(std::remove_if(packets_.begin(), packets_.end(), run_matches),
                 packets_.end());
  blobs_.erase(std::remove_if(blobs_.begin(), blobs_.end(), run_matches),
               blobs_.end());
  plugin_data_.erase(
      std::remove_if(plugin_data_.begin(), plugin_data_.end(), run_matches),
      plugin_data_.end());
  log_segments_.erase(std::remove_if(log_segments_.begin(),
                                     log_segments_.end(), run_matches),
                      log_segments_.end());
}

RunNodeData NodeStore::extract_run(std::int64_t run_id) {
  RunNodeData data;
  data.events = take_run(events_, run_id);
  data.packets = take_run(packets_, run_id);
  data.blobs = take_run(blobs_, run_id);
  data.plugin_data = take_run(plugin_data_, run_id);
  data.log_segments = take_run(log_segments_, run_id);
  return data;
}

void NodeStore::merge_run(std::int64_t run_id, RunNodeData data) {
  insert_run_ordered(events_, std::move(data.events), run_id);
  insert_run_ordered(packets_, std::move(data.packets), run_id);
  insert_run_ordered(blobs_, std::move(data.blobs), run_id);
  insert_run_ordered(plugin_data_, std::move(data.plugin_data), run_id);
  insert_run_ordered(log_segments_, std::move(data.log_segments), run_id);
}

void NodeStore::clear() {
  events_.clear();
  packets_.clear();
  blobs_.clear();
  plugin_data_.clear();
  log_segments_.clear();
}

Bytes NodeStore::serialize() const {
  ByteWriter w;
  w.u32(0x4E533300);  // "NS3\0"
  w.u64(events_.size());
  for (const RawEvent& event : events_) {
    w.i64(event.run_id);
    w.i64(event.local_time_ns);
    w.string(event.type);
    w.value(event.parameter);
  }
  w.u64(packets_.size());
  for (const RawPacket& packet : packets_) {
    w.i64(packet.run_id);
    w.i64(packet.local_time_ns);
    w.string(packet.src_node);
    w.blob(packet.data);
  }
  auto write_blobs = [&w](const std::vector<NamedBlob>& blobs) {
    w.u64(blobs.size());
    for (const NamedBlob& blob : blobs) {
      w.i64(blob.run_id);
      w.string(blob.name);
      w.string(blob.content);
    }
  };
  write_blobs(blobs_);
  write_blobs(plugin_data_);
  w.u64(log_segments_.size());
  for (const LogSegment& segment : log_segments_) {
    w.i64(segment.run_id);
    w.string(segment.text);
  }
  return w.take();
}

Result<NodeStore> NodeStore::deserialize(const Bytes& data) {
  ByteReader r(data);
  EXC_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  // 0x4E533200 ("NS2"): single concatenated log string at the tail.
  // 0x4E533300 ("NS3"): run-scoped log segments.
  if (magic != 0x4E533200 && magic != 0x4E533300) {
    return err_io("not a node store blob");
  }
  NodeStore store;
  EXC_ASSIGN_OR_RETURN(std::uint64_t event_count, r.u64());
  for (std::uint64_t i = 0; i < event_count; ++i) {
    RawEvent event;
    EXC_ASSIGN_OR_RETURN(event.run_id, r.i64());
    EXC_ASSIGN_OR_RETURN(event.local_time_ns, r.i64());
    EXC_ASSIGN_OR_RETURN(event.type, r.string());
    EXC_ASSIGN_OR_RETURN(event.parameter, r.value());
    store.events_.push_back(std::move(event));
  }
  EXC_ASSIGN_OR_RETURN(std::uint64_t packet_count, r.u64());
  for (std::uint64_t i = 0; i < packet_count; ++i) {
    RawPacket packet;
    EXC_ASSIGN_OR_RETURN(packet.run_id, r.i64());
    EXC_ASSIGN_OR_RETURN(packet.local_time_ns, r.i64());
    EXC_ASSIGN_OR_RETURN(packet.src_node, r.string());
    EXC_ASSIGN_OR_RETURN(packet.data, r.blob());
    store.packets_.push_back(std::move(packet));
  }
  auto read_blobs = [&r](std::vector<NamedBlob>& blobs) -> Status {
    EXC_ASSIGN_OR_RETURN(std::uint64_t count, r.u64());
    for (std::uint64_t i = 0; i < count; ++i) {
      NamedBlob blob;
      EXC_ASSIGN_OR_RETURN(blob.run_id, r.i64());
      EXC_ASSIGN_OR_RETURN(blob.name, r.string());
      EXC_ASSIGN_OR_RETURN(blob.content, r.string());
      blobs.push_back(std::move(blob));
    }
    return {};
  };
  EXC_TRY(read_blobs(store.blobs_));
  EXC_TRY(read_blobs(store.plugin_data_));
  if (magic == 0x4E533200) {
    // Legacy store: the whole log becomes one experiment-scoped segment.
    std::string legacy_log;
    EXC_ASSIGN_OR_RETURN(legacy_log, r.string());
    store.append_log(std::move(legacy_log));
  } else {
    EXC_ASSIGN_OR_RETURN(std::uint64_t segment_count, r.u64());
    for (std::uint64_t i = 0; i < segment_count; ++i) {
      LogSegment segment;
      EXC_ASSIGN_OR_RETURN(segment.run_id, r.i64());
      EXC_ASSIGN_OR_RETURN(segment.text, r.string());
      store.log_segments_.push_back(std::move(segment));
    }
  }
  return store;
}

const NodeStore* Level2Store::find_node(const std::string& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Level2Store::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, store] : nodes_) out.push_back(name);
  return out;
}

std::int64_t Level2Store::offset_ns(std::int64_t run_id,
                                    const std::string& node) const {
  for (const SyncMeasurement& sync : syncs_) {
    if (sync.run_id == run_id && sync.node == node) return sync.offset_ns;
  }
  return 0;
}

bool Level2Store::run_complete(std::int64_t run_id) const {
  return std::find(completed_runs_.begin(), completed_runs_.end(), run_id) !=
         completed_runs_.end();
}

void Level2Store::discard_run(std::int64_t run_id) {
  for (auto& [name, store] : nodes_) store.discard_run(run_id);
  syncs_.erase(std::remove_if(syncs_.begin(), syncs_.end(),
                              [run_id](const SyncMeasurement& sync) {
                                return sync.run_id == run_id;
                              }),
               syncs_.end());
  completed_runs_.erase(
      std::remove(completed_runs_.begin(), completed_runs_.end(), run_id),
      completed_runs_.end());
}

RunData Level2Store::extract_run(std::int64_t run_id) {
  RunData data;
  data.run_id = run_id;
  for (auto& [name, store] : nodes_) {
    RunNodeData node_data = store.extract_run(run_id);
    if (!node_data.empty()) data.nodes.emplace(name, std::move(node_data));
  }
  data.syncs = take_run(syncs_, run_id);
  return data;
}

void Level2Store::merge_run(RunData data) {
  for (auto& [name, node_data] : data.nodes) {
    nodes_[name].merge_run(data.run_id, std::move(node_data));
  }
  insert_run_ordered(syncs_, std::move(data.syncs), data.run_id);
}

void Level2Store::clear() {
  nodes_.clear();
  syncs_.clear();
  completed_runs_.clear();
}

namespace {

Status write_file(const std::filesystem::path& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return err_io("cannot open '" + path.string() + "' for writing");
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return err_io("short write to '" + path.string() + "'");
  return {};
}

Result<Bytes> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return err_io("cannot open '" + path.string() + "' for reading");
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

Status Level2Store::write_to_directory(const std::string& directory) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(directory) / "nodes", ec);
  if (ec) return err_io("cannot create '" + directory + "': " + ec.message());

  for (const auto& [name, store] : nodes_) {
    EXC_TRY(write_file(fs::path(directory) / "nodes" / (name + ".store"),
                       store.serialize()));
  }
  ByteWriter w;
  w.u32(0x4D535432);  // "MST2"
  w.u64(syncs_.size());
  for (const SyncMeasurement& sync : syncs_) {
    w.i64(sync.run_id);
    w.string(sync.node);
    w.i64(sync.offset_ns);
    w.i64(sync.run_start_ns);
  }
  w.u64(completed_runs_.size());
  for (std::int64_t run : completed_runs_) w.i64(run);
  return write_file(fs::path(directory) / "master.store", w.take());
}

Result<Level2Store> Level2Store::load_from_directory(
    const std::string& directory) {
  namespace fs = std::filesystem;
  Level2Store store;
  fs::path nodes_dir = fs::path(directory) / "nodes";
  std::error_code ec;
  if (fs::exists(nodes_dir, ec)) {
    // Deterministic order: sort directory entries.
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(nodes_dir, ec)) {
      entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& path : entries) {
      if (path.extension() != ".store") continue;
      EXC_ASSIGN_OR_RETURN(Bytes data, read_file(path));
      EXC_ASSIGN_OR_RETURN(NodeStore node, NodeStore::deserialize(data));
      store.nodes_.emplace(path.stem().string(), std::move(node));
    }
  }
  fs::path master = fs::path(directory) / "master.store";
  if (fs::exists(master, ec)) {
    EXC_ASSIGN_OR_RETURN(Bytes data, read_file(master));
    ByteReader r(data);
    EXC_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
    if (magic != 0x4D535432) return err_io("bad master store file");
    EXC_ASSIGN_OR_RETURN(std::uint64_t sync_count, r.u64());
    for (std::uint64_t i = 0; i < sync_count; ++i) {
      SyncMeasurement sync;
      EXC_ASSIGN_OR_RETURN(sync.run_id, r.i64());
      EXC_ASSIGN_OR_RETURN(sync.node, r.string());
      EXC_ASSIGN_OR_RETURN(sync.offset_ns, r.i64());
      EXC_ASSIGN_OR_RETURN(sync.run_start_ns, r.i64());
      store.syncs_.push_back(std::move(sync));
    }
    EXC_ASSIGN_OR_RETURN(std::uint64_t run_count, r.u64());
    for (std::uint64_t i = 0; i < run_count; ++i) {
      EXC_ASSIGN_OR_RETURN(std::int64_t run, r.i64());
      store.completed_runs_.push_back(run);
    }
  }
  return store;
}

}  // namespace excovery::storage
