# Empty dependencies file for test_sd_slp.
# This may be replaced when dependencies are built.
