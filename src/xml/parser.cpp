#include "xml/parser.hpp"

#include <string>

namespace excovery::xml {

namespace detail {

/// Parser-only access to the raw node machinery: links pre-validated
/// string_views (into the document's retained source) without copying.
class NodeFactory {
 public:
  static Document new_document() { return Document(); }
  static DocCore& core(Document& doc) { return *doc.core_; }
  static void set_root(Document& doc, Element* e) { doc.root_ = e; }
  static Element* new_element(Document& doc, std::string_view name) {
    return doc.new_element(name, /*stable_name=*/true);
  }
  static void link_child(Element& parent, Element* child) {
    parent.link_child(child);
  }
  static void add_attr(DocCore& core, Element& e, std::string_view name,
                       std::string_view value) {
    auto* a = new (core.arena.allocate(sizeof(Attribute), alignof(Attribute)))
        Attribute();
    a->name = core.intern(name, /*stable=*/true);
    a->value = value;
    e.link_attr(a);
  }
  static void add_text(DocCore& core, Element& e, std::string_view text) {
    auto* s = new (core.arena.allocate(sizeof(TextSegment),
                                       alignof(TextSegment))) TextSegment();
    s->set(text);
    e.link_text(s);
  }
};

}  // namespace detail

namespace {

using detail::NodeFactory;

/// XML whitespace is exactly space, tab, CR, LF (locale-free; the old
/// std::isspace also matched \f and \v and depended on the C locale).
constexpr bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

constexpr bool is_name_start(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

constexpr bool is_name_char(char c) noexcept {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Single-pass recursive-descent parser over the document's retained
/// source.  No per-character position bookkeeping: line/column for error
/// messages are recovered by scanning the prefix only when an error is
/// actually produced.
class Parser {
 public:
  explicit Parser(Document& doc)
      : doc_(doc),
        core_(NodeFactory::core(doc)),
        in_(core_.source) {}

  Status run() {
    Element* root = nullptr;
    for (;;) {
      skip_ws();
      if (pos_ >= in_.size()) break;
      if (consume("<!--")) {
        EXC_TRY(skip_comment());
        continue;
      }
      if (consume("<?")) {
        EXC_TRY(skip_pi());
        continue;
      }
      if (consume("<!")) {
        // DOCTYPE etc.: skip to '>'.
        while (pos_ < in_.size() && in_[pos_] != '>') ++pos_;
        if (!consume(">")) return error("unterminated declaration");
        continue;
      }
      if (!consume("<")) {
        return error("unexpected character data outside root element");
      }
      if (root) return error("multiple root elements");
      EXC_ASSIGN_OR_RETURN(root, parse_element_at(0));
    }
    if (!root) return err_parse("document has no root element");
    NodeFactory::set_root(doc_, root);
    return {};
  }

 private:
  std::string_view view(std::size_t from, std::size_t to) const noexcept {
    return in_.substr(from, to - from);
  }

  void skip_ws() noexcept {
    while (pos_ < in_.size() && is_ws(in_[pos_])) ++pos_;
  }

  bool consume(std::string_view literal) noexcept {
    if (in_.size() - pos_ < literal.size()) return false;
    if (in_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  /// Line/column are derived from the error offset on demand.
  Error error(std::string message) const {
    int line = 1;
    std::size_t line_start = 0;
    std::size_t stop = pos_ < in_.size() ? pos_ : in_.size();
    for (std::size_t i = 0; i < stop; ++i) {
      if (in_[i] == '\n') {
        ++line;
        line_start = i + 1;
      }
    }
    int column = static_cast<int>(stop - line_start) + 1;
    return err_parse("line " + std::to_string(line) + ", column " +
                     std::to_string(column) + ": " + std::move(message));
  }

  Result<std::string_view> parse_name() {
    if (pos_ >= in_.size() || !is_name_start(in_[pos_])) {
      return error("expected a name");
    }
    std::size_t start = pos_;
    ++pos_;
    while (pos_ < in_.size() && is_name_char(in_[pos_])) ++pos_;
    return view(start, pos_);
  }

  /// Decode &amp; &lt; &gt; &apos; &quot; &#NN; &#xNN; — the '&' is
  /// already consumed; the decoded bytes are appended to `out`.
  Status append_entity(std::string& out) {
    std::size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != ';') {
      ++pos_;
      if (pos_ - start > 8) return error("unterminated entity reference");
    }
    if (pos_ >= in_.size()) return error("unterminated entity reference");
    std::string_view entity = view(start, pos_);
    ++pos_;  // ';'
    if (entity == "amp") {
      out.push_back('&');
      return {};
    }
    if (entity == "lt") {
      out.push_back('<');
      return {};
    }
    if (entity == "gt") {
      out.push_back('>');
      return {};
    }
    if (entity == "apos") {
      out.push_back('\'');
      return {};
    }
    if (entity == "quot") {
      out.push_back('"');
      return {};
    }
    if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::size_t from = 1;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        base = 16;
        from = 2;
      }
      unsigned long code = 0;
      for (std::size_t i = from; i < entity.size(); ++i) {
        char c = entity[i];
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else
          return error("bad character reference &" + std::string(entity) + ";");
        code = code * static_cast<unsigned long>(base) +
               static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) {
          return error("character reference out of range");
        }
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
      return {};
    }
    return error("unknown entity &" + std::string(entity) + ";");
  }

  Status skip_comment() {
    // "<!--" already consumed.
    std::size_t end = in_.find("-->", pos_);
    if (end == std::string::npos) {
      pos_ = in_.size();
      return error("unterminated comment");
    }
    pos_ = end + 3;
    return {};
  }

  Status skip_pi() {
    // "<?" already consumed.
    std::size_t end = in_.find("?>", pos_);
    if (end == std::string::npos) {
      pos_ = in_.size();
      return error("unterminated processing instruction");
    }
    pos_ = end + 2;
    return {};
  }

  Status parse_attribute(Element& element) {
    EXC_ASSIGN_OR_RETURN(std::string_view name, parse_name());
    skip_ws();
    if (!consume("=")) return error("expected '=' after attribute name");
    skip_ws();
    char quote = pos_ < in_.size() ? in_[pos_] : '\0';
    if (quote != '"' && quote != '\'') {
      return error("expected quoted attribute value");
    }
    ++pos_;
    std::size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != quote && in_[pos_] != '&') ++pos_;
    std::string_view value;
    if (pos_ < in_.size() && in_[pos_] == quote) {
      // Fast path: the value is a pure slice of the source.
      value = view(start, pos_);
      ++pos_;
    } else if (pos_ >= in_.size()) {
      return error("unterminated attribute value");
    } else {
      // Entities present: decode once into the arena.
      scratch_.assign(in_, start, pos_ - start);
      for (;;) {
        ++pos_;  // '&'
        EXC_TRY(append_entity(scratch_));
        std::size_t plain = pos_;
        while (pos_ < in_.size() && in_[pos_] != quote && in_[pos_] != '&') {
          ++pos_;
        }
        scratch_.append(in_, plain, pos_ - plain);
        if (pos_ >= in_.size()) return error("unterminated attribute value");
        if (in_[pos_] == quote) {
          ++pos_;
          break;
        }
      }
      value = core_.arena.store(scratch_);
    }
    if (element.has_attr(name)) {
      return error("duplicate attribute '" + std::string(name) + "'");
    }
    NodeFactory::add_attr(core_, element, name, value);
    return {};
  }

  Result<Element*> parse_element_at(int depth) {
    constexpr int kMaxDepth = 256;
    if (depth > kMaxDepth) return error("document nested too deeply");

    // '<' already consumed by caller.
    EXC_ASSIGN_OR_RETURN(std::string_view name, parse_name());
    Element* element = NodeFactory::new_element(doc_, name);

    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return element;
      if (consume(">")) break;
      if (pos_ >= in_.size()) return error("unterminated start tag");
      EXC_TRY(parse_attribute(*element));
    }

    // Content: text runs interleaved with markup.  A run without entities
    // becomes a zero-copy view; entity-bearing runs decode into scratch
    // and land in the arena as one segment.
    for (;;) {
      std::size_t run_start = pos_;
      bool in_scratch = false;
      for (;;) {
        std::size_t span = pos_;
        while (pos_ < in_.size() && in_[pos_] != '<' && in_[pos_] != '&') {
          ++pos_;
        }
        if (pos_ >= in_.size()) {
          return error("unterminated element <" + std::string(element->name()) +
                       ">");
        }
        if (in_[pos_] == '<') {
          if (in_scratch) scratch_.append(in_, span, pos_ - span);
          break;
        }
        // '&'
        if (!in_scratch) {
          scratch_.assign(in_, run_start, pos_ - run_start);
          in_scratch = true;
        } else {
          scratch_.append(in_, span, pos_ - span);
        }
        ++pos_;
        EXC_TRY(append_entity(scratch_));
      }
      // Flush the finished run.
      if (in_scratch) {
        if (!scratch_.empty()) {
          NodeFactory::add_text(core_, *element, core_.arena.store(scratch_));
        }
        scratch_.clear();
      } else if (pos_ > run_start) {
        NodeFactory::add_text(core_, *element, view(run_start, pos_));
      }

      // Markup dispatch; pos_ is at '<'.
      if (consume("<!--")) {
        EXC_TRY(skip_comment());
        continue;
      }
      if (consume("<![CDATA[")) {
        std::size_t end = in_.find("]]>", pos_);
        if (end == std::string::npos) {
          pos_ = in_.size();
          return error("unterminated CDATA section");
        }
        if (end > pos_) {
          NodeFactory::add_text(core_, *element, view(pos_, end));
        }
        pos_ = end + 3;
        continue;
      }
      if (consume("<?")) {
        EXC_TRY(skip_pi());
        continue;
      }
      if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
        pos_ += 2;  // "</"
        EXC_ASSIGN_OR_RETURN(std::string_view close, parse_name());
        skip_ws();
        if (!consume(">")) return error("malformed end tag");
        if (close != element->name()) {
          return error("mismatched end tag </" + std::string(close) +
                       "> for <" + std::string(element->name()) + ">");
        }
        return element;
      }
      // Child element.
      ++pos_;  // '<'
      EXC_ASSIGN_OR_RETURN(Element * child, parse_element_at(depth + 1));
      NodeFactory::link_child(*element, child);
    }
  }

  Document& doc_;
  DocCore& core_;
  /// A view of core_.source: substrings are views into the retained
  /// buffer (a std::string member here would make substr() allocate — and
  /// dangle).
  std::string_view in_;
  std::size_t pos_ = 0;
  std::string scratch_;  ///< reused decode buffer for entity-bearing runs
};

}  // namespace

Result<Document> parse(std::string&& input) {
  Document doc = NodeFactory::new_document();
  NodeFactory::core(doc).source = std::move(input);
  Parser parser(doc);
  EXC_TRY(parser.run());
  return doc;
}

Result<Document> parse(std::string_view input) {
  return parse(std::string(input));
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace excovery::xml
