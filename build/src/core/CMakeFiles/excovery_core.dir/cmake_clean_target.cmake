file(REMOVE_RECURSE
  "libexcovery_core.a"
)
