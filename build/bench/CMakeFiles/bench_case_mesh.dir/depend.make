# Empty dependencies file for bench_case_mesh.
# This may be replaced when dependencies are built.
