// Process interpreter: executes the action sequences of the description
// (§IV-C2) inside the discrete-event simulation.
//
// "Every process is described as a sequence of actions.  Processes run
// concurrently on the nodes ... ExCovery defines methods for
// synchronization of the execution to provide basic flow control":
//
//   wait_for_time   — fixed delay in seconds
//   wait_for_event  — until the specified event is registered on any
//                     participant; can constrain origin (from_dependency),
//                     parameter (param_dependency) and set a timeout
//   wait_marker     — time stamp considered by the NEXT wait_for_event
//   event_flag      — create a local event
//
// Dependency semantics with instance="all": a from-set requires the event
// from EVERY node in the set; a param-set requires an event carrying EVERY
// value in the set; when both are given, every (node, value) combination is
// required (e.g. Fig. 10: every SU has discovered every SM).
//
// All other action names are dispatched through an ActionDispatcher — to
// the node's NodeManager over XML-RPC for node processes, or to the
// environment manager for env processes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/description.hpp"
#include "core/plan.hpp"
#include "core/recorder.hpp"
#include "sim/lifetime.hpp"
#include "sim/scheduler.hpp"

namespace excovery::core {

class SimPlatform;

/// Where an interpreter sends non-flow-control actions.
class ActionDispatcher {
 public:
  virtual ~ActionDispatcher() = default;
  /// Execute an action on a concrete node (over the control channel).
  virtual Status node_action(const std::string& concrete_node,
                             const std::string& method, ValueMap params) = 0;
  /// Execute an environment action (traffic generation, drop-all, ...).
  virtual Status env_action(const std::string& method, ValueMap params) = 0;
};

class ProcessInterpreter {
 public:
  enum class Kind { kActor, kManipulation, kEnvironment };
  enum class State { kIdle, kRunning, kWaiting, kDone, kFailed };

  /// `node` is the concrete node the process is bound to ("" for env
  /// processes).  `label` names the process in logs and error messages.
  ProcessInterpreter(SimPlatform& platform,
                     const ExperimentDescription& description,
                     const RunSpec& run, ActionDispatcher& dispatcher,
                     Kind kind, std::string node,
                     std::vector<ProcessAction> actions, std::string label);
  ~ProcessInterpreter();

  ProcessInterpreter(const ProcessInterpreter&) = delete;
  ProcessInterpreter& operator=(const ProcessInterpreter&) = delete;

  using CompletionFn = std::function<void(const ProcessInterpreter&)>;
  void start(CompletionFn on_complete);

  State state() const noexcept { return state_; }
  bool finished() const noexcept {
    return state_ == State::kDone || state_ == State::kFailed;
  }
  const std::optional<Error>& error() const noexcept { return error_; }
  const std::string& label() const noexcept { return label_; }
  const std::string& node() const noexcept { return node_; }

  /// Number of wait_for_event timeouts hit (informational).
  int timeouts() const noexcept { return timeouts_; }

 private:
  struct WaitState {
    std::string event_name;
    std::vector<std::string> from;    ///< concrete names; empty = any
    std::vector<std::string> params;  ///< required values; empty = any
    std::set<std::pair<std::string, std::string>> satisfied;
    std::size_t needed = 1;
    sim::SimTime consider_from;
    sim::SubscriptionHandle subscription;
    sim::TimerHandle timeout_timer;
    std::optional<double> timeout_s;
    /// Implicit completion waits fail the process on timeout; explicit
    /// wait_for_event timeouts let the process continue (Fig. 10).
    bool fail_on_timeout = false;
  };

  /// Suspend on a wait (shared by wait_for_event and implicit completion
  /// waits after synchronous-by-contract actions like sd_init).
  Status begin_wait(std::unique_ptr<WaitState> wait);

  void step();
  void complete(Status status);

  Status execute(const ProcessAction& action);
  Status do_wait_for_time(const ProcessAction& action);
  Status do_wait_for_event(const ProcessAction& action);
  Status do_event_flag(const ProcessAction& action);

  /// Resolve a ParamValue against the treatment and actor map.
  Result<Value> resolve(const ParamValue& value) const;
  /// Resolve a node-set selector to concrete node names.
  Result<std::vector<std::string>> resolve_node_set(
      const NodeSetRef& ref) const;
  /// Resolve all action params to a flat ValueMap (node sets become
  /// arrays of concrete names).
  Result<ValueMap> resolve_params(const ProcessAction& action) const;

  bool event_matches(const sim::BusEvent& event, WaitState& wait);
  void finish_wait();

  SimPlatform& platform_;
  const ExperimentDescription& description_;
  const RunSpec& run_;
  ActionDispatcher& dispatcher_;
  Kind kind_;
  std::string node_;
  std::vector<ProcessAction> actions_;
  std::string label_;

  State state_ = State::kIdle;
  std::size_t next_action_ = 0;
  std::optional<Error> error_;
  CompletionFn on_complete_;
  std::optional<sim::SimTime> marker_;
  std::unique_ptr<WaitState> wait_;
  int timeouts_ = 0;
  /// Invalidates handle-less timers (start deferral, wait_for_time) on
  /// destruction — an aborted attempt leaves them in the scheduler, and
  /// they must not touch the destroyed interpreter when the retry's
  /// scheduler drains them.
  sim::GenerationGate generation_;
};

}  // namespace excovery::core
