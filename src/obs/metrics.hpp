// Runtime metrics for the experiment machinery itself (DESIGN.md §11).
//
// ExCovery's measurement promise (§IV-A of the paper) covers the system
// under test; this registry turns the same discipline onto the execution
// engine: scheduler dispatch, network fan-out, run retries, pool
// utilization and storage conditioning all report here instead of being
// runtime black boxes.
//
// Shape: a shared MetricsRegistry interns metric names to dense ids (cold
// path, mutex-protected); each platform instance — the master's own, or a
// run-parallel worker replica — records into its private MetricsShard with
// plain unsynchronised increments (hot path, lock-free by ownership).
// Shards merge by commutative reduction (counter/bin sums, gauge maxima),
// so as long as every increment is attributable to one run — and each run
// is a pure function of (description, config, run id, attempt), the
// DESIGN.md §10 invariant — the merged deterministic-domain values are
// bit-identical across `run_workers` and across which worker claimed which
// run.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace excovery::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Determinism contract of a metric (DESIGN.md §11).
enum class MetricDomain : std::uint8_t {
  /// Pure function of the experiment: bit-identical across worker counts.
  kDeterministic,
  /// Simulated-time derived but instance-dependent (e.g. the scheduler's
  /// pending high-water mark, which sees gated leftover timers from earlier
  /// runs on a shared platform instance but not on a fresh replica).
  kBestEffort,
  /// Wall-clock measurement: never deterministic, never exported into
  /// result packages.
  kWall,
};

std::string_view to_string(MetricKind kind) noexcept;
std::string_view to_string(MetricDomain domain) noexcept;

/// Dense metric identifier, valid within one registry.
struct MetricId {
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t index = kInvalid;
  bool valid() const noexcept { return index != kInvalid; }
};

/// Histogram shape.  Equal-width histograms bin [lo, hi) into `bins` equal
/// cells plus under/overflow; log-scale histograms bin by power of two
/// (bin b covers [2^(b-16), 2^(b-15)), clamped to 64 bins), which spans
/// sub-microsecond to multi-hour values without choosing bounds up front.
struct HistogramSpec {
  bool log_scale = false;
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 16;
};

struct MetricDesc {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricDomain domain = MetricDomain::kDeterministic;
  std::string unit;
  HistogramSpec hist;
};

/// Name-interning registry shared by every shard of one execution.
/// Registration is idempotent: re-registering a name returns the existing
/// id, so lazily instrumented code paths agree on indices.
class MetricsRegistry {
 public:
  MetricId counter(std::string_view name,
                   MetricDomain domain = MetricDomain::kDeterministic,
                   std::string_view unit = "");
  MetricId gauge(std::string_view name,
                 MetricDomain domain = MetricDomain::kDeterministic,
                 std::string_view unit = "");
  MetricId histogram(std::string_view name, MetricDomain domain, double lo,
                     double hi, std::size_t bins, std::string_view unit = "");
  MetricId log_histogram(std::string_view name,
                         MetricDomain domain = MetricDomain::kDeterministic,
                         std::string_view unit = "");

  /// Snapshot of all descriptors, indexed by MetricId.
  std::vector<MetricDesc> descriptors() const;
  std::size_t size() const;

 private:
  MetricId intern(std::string_view name, MetricKind kind, MetricDomain domain,
                  std::string_view unit, const HistogramSpec& hist);

  mutable std::mutex mutex_;
  std::vector<MetricDesc> descs_;
};

/// Number of cells in a log-scale histogram.
inline constexpr std::size_t kLogBins = 64;
/// Bin index of value 1.0 in a log-scale histogram (exponent offset).
inline constexpr int kLogBinOffset = 16;

/// One metric's recorded state inside a shard.
struct MetricCell {
  std::uint64_t count = 0;  ///< counter value / histogram observation count
  std::uint64_t nan_count = 0;  ///< histogram observations that were NaN
  std::int64_t gauge_last = 0;
  std::int64_t gauge_max = std::numeric_limits<std::int64_t>::min();
  bool gauge_set = false;
  /// Correctly-rounded sum of the observed values — a pure function of the
  /// observed multiset, independent of observation and merge order (see
  /// sum_parts).  Histogram sums cross shard merges whose partitioning
  /// depends on which worker claimed which run, so naive `sum += value`
  /// accumulation would make the last ulp timing-dependent.
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Non-overlapping partials representing the exact sum (Shewchuk
  /// grow-expansion, the algorithm behind Python's math.fsum); `sum` is
  /// this expansion correctly rounded.
  std::vector<double> sum_parts;
  /// Equal-width: [underflow, bins..., overflow]; log-scale: kLogBins cells.
  std::vector<std::uint64_t> bins;
};

/// Per-instance recording surface.  NOT thread-safe: each shard has exactly
/// one owning thread on the hot path (the platform instance that records
/// into it); cross-shard aggregation happens through merge_from after the
/// owner is done.
class MetricsShard {
 public:
  explicit MetricsShard(const MetricsRegistry* registry)
      : registry_(registry) {}

  void add(MetricId id, std::uint64_t n = 1);
  void set_gauge(MetricId id, std::int64_t value);
  void observe(MetricId id, double value);

  /// Commutative merge: counter/bin sums, gauge maxima, min/max envelopes.
  /// The result is independent of merge order and of how increments were
  /// partitioned across shards.
  void merge_from(const MetricsShard& other);

  const MetricCell* cell(MetricId id) const noexcept;
  const MetricsRegistry* registry() const noexcept { return registry_; }

 private:
  MetricCell& ensure(MetricId id);
  const HistogramSpec& spec_for(MetricId id);

  const MetricsRegistry* registry_;
  std::vector<MetricCell> cells_;
  /// Descriptor shapes cached per id (ids are stable, shapes immutable), so
  /// the observe hot path never takes the registry lock.
  std::vector<HistogramSpec> spec_cache_;
};

/// Bin index for a value in a log-scale histogram.
std::size_t log_bin(double value) noexcept;
/// Lower bound of a log-scale bin (inverse of log_bin).
double log_bin_lower(std::size_t bin) noexcept;

}  // namespace excovery::obs
