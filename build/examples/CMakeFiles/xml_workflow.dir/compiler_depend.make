# Empty compiler generated dependencies file for xml_workflow.
# This may be replaced when dependencies are built.
