#include "faults/schedule.hpp"

#include <memory>
#include <utility>

namespace excovery::faults {

Status validate(const ChurnSpec& spec) {
  if (spec.mean_uptime.nanos() <= 0 || spec.mean_downtime.nanos() <= 0) {
    return err_invalid("churn holding times must be positive");
  }
  return {};
}

namespace {

/// Shared state of one alternating up/down process.  Scheduled callbacks
/// hold the state by shared_ptr and check `running` first, so timers left
/// behind by a stopped process drain as no-ops (nothing observable leaks
/// into later runs).
struct FlapState {
  bool running = false;
  bool down = false;
  Pcg32 rng;
};

sim::SimDuration draw_holding(FlapState& state, const ChurnSpec& spec,
                              sim::SimDuration mean) {
  if (!spec.exponential) return mean;
  const double mean_s = static_cast<double>(mean.nanos()) / 1e9;
  return sim::SimDuration::from_seconds(state.rng.exponential(1.0 / mean_s));
}

}  // namespace

void FaultScheduleEngine::crash_node(net::NodeId node,
                                     const std::string& name) {
  if (crash_) {
    crash_(name);
    return;
  }
  injector_.network_.set_interface_up(node, net::Direction::kReceive, false);
  injector_.network_.set_interface_up(node, net::Direction::kTransmit, false);
}

void FaultScheduleEngine::restore_node(net::NodeId node,
                                       const std::string& name) {
  if (restore_) {
    restore_(name);
    return;
  }
  injector_.network_.set_interface_up(node, net::Direction::kReceive, true);
  injector_.network_.set_interface_up(node, net::Direction::kTransmit, true);
}

Result<FaultHandle> FaultScheduleEngine::node_crash(
    net::NodeId node, const TemporalSpec& temporal) {
  net::Network& network = injector_.network_;
  if (node >= network.node_count()) {
    return err_invalid("node_crash: unknown node " + std::to_string(node));
  }
  EXC_TRY(validate(temporal));
  std::string name = network.topology().node(node).name;
  return injector_.schedule(
      "node_crash", name, temporal,
      [this, node, name] { crash_node(node, name); },
      [this, node, name] { restore_node(node, name); });
}

Result<FaultHandle> FaultScheduleEngine::node_churn(
    net::NodeId node, const ChurnSpec& spec, const TemporalSpec& temporal) {
  net::Network& network = injector_.network_;
  if (node >= network.node_count()) {
    return err_invalid("node_churn: unknown node " + std::to_string(node));
  }
  EXC_TRY(validate(spec));
  EXC_TRY(validate(temporal));
  std::string name = network.topology().node(node).name;
  auto state = std::make_shared<FlapState>();
  sim::Scheduler& scheduler = network.scheduler();

  // Alternating loop: each callback flips the node and schedules the next
  // transition.  Recursion through a shared function object keeps one
  // allocation per process, not per transition.  The loop and its timers
  // hold the function object weakly — the only strong reference is the
  // activation closure the injector keeps while the fault is registered,
  // so removing the fault releases the loop instead of cycling on itself;
  // timers that outlive it drain as no-ops.
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_step = step;
  auto fire = [weak_step] {
    if (auto locked = weak_step.lock()) (*locked)();
  };
  *step = [this, node, name, spec, state, fire, &scheduler] {
    if (!state->running) return;
    if (!state->down) {
      state->down = true;
      crash_node(node, name);
      injector_.emit(name, "fault_node_down", Value{});
      scheduler.schedule(draw_holding(*state, spec, spec.mean_downtime),
                         fire);
    } else {
      state->down = false;
      restore_node(node, name);
      injector_.emit(name, "fault_node_up", Value{});
      scheduler.schedule(draw_holding(*state, spec, spec.mean_uptime), fire);
    }
  };

  return injector_.schedule(
      "node_churn", name, temporal,
      [spec, state, step, fire, name, &scheduler, temporal] {
        state->running = true;
        state->down = false;
        state->rng = RngFactory(temporal.randomseed ^ fnv1a64(name))
                         .stream("churn");
        scheduler.schedule(draw_holding(*state, spec, spec.mean_uptime),
                           fire);
      },
      [this, node, name, state] {
        state->running = false;
        if (state->down) {
          state->down = false;
          restore_node(node, name);
          injector_.emit(name, "fault_node_up", Value{});
        }
      });
}

Result<FaultHandle> FaultScheduleEngine::link_flap(
    net::NodeId a, net::NodeId b, const ChurnSpec& spec,
    const TemporalSpec& temporal) {
  net::Network& network = injector_.network_;
  if (a >= network.node_count() || b >= network.node_count()) {
    return err_invalid("link_flap: unknown node");
  }
  EXC_TRY(validate(spec));
  EXC_TRY(validate(temporal));
  // Validate adjacency up front so a schedule over a non-existent link
  // fails at start time, not mid-run.
  if (network.topology().link_between(a, b) == nullptr) {
    return err_not_found("link_flap: no link between nodes " +
                         std::to_string(a) + " and " + std::to_string(b));
  }
  std::string name = network.topology().node(a).name;
  auto state = std::make_shared<FlapState>();
  sim::Scheduler& scheduler = network.scheduler();

  // Same weak-loop ownership as node_churn: only the activation closure
  // holds the function object strongly.
  auto step = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_step = step;
  auto fire = [weak_step] {
    if (auto locked = weak_step.lock()) (*locked)();
  };
  *step = [this, a, b, name, spec, state, fire, &scheduler] {
    if (!state->running) return;
    net::Network& net_ref = injector_.network_;
    if (!state->down) {
      state->down = true;
      (void)net_ref.set_link_up(a, b, false);
      injector_.emit(name, "fault_link_down", Value{});
      scheduler.schedule(draw_holding(*state, spec, spec.mean_downtime),
                         fire);
    } else {
      state->down = false;
      (void)net_ref.set_link_up(a, b, true);
      injector_.emit(name, "fault_link_up", Value{});
      scheduler.schedule(draw_holding(*state, spec, spec.mean_uptime), fire);
    }
  };

  std::string link_name = name + "-" +
                          network.topology().node(b).name;
  return injector_.schedule(
      "link_flap", name, temporal,
      [spec, state, step, fire, name, link_name, temporal, &scheduler] {
        state->running = true;
        state->down = false;
        state->rng = RngFactory(temporal.randomseed ^ fnv1a64(link_name))
                         .stream("link-flap");
        scheduler.schedule(draw_holding(*state, spec, spec.mean_uptime),
                           fire);
      },
      [this, a, b, name, state] {
        state->running = false;
        if (state->down) {
          state->down = false;
          (void)injector_.network_.set_link_up(a, b, true);
          injector_.emit(name, "fault_link_up", Value{});
        }
      });
}

Result<FaultHandle> FaultScheduleEngine::partition(
    const std::vector<net::NodeId>& side, const TemporalSpec& temporal) {
  net::Network& network = injector_.network_;
  if (side.empty()) {
    return err_invalid("partition: side must name at least one node");
  }
  for (net::NodeId node : side) {
    if (node >= network.node_count()) {
      return err_invalid("partition: unknown node " + std::to_string(node));
    }
  }
  EXC_TRY(validate(temporal));
  std::vector<bool> in_side(network.node_count(), false);
  for (net::NodeId node : side) in_side[node] = true;
  // Crossing links: exactly one endpoint inside the named side.
  auto crossing =
      std::make_shared<std::vector<std::pair<net::NodeId, net::NodeId>>>();
  for (const net::Link& link : network.topology().links()) {
    if (in_side[link.a] != in_side[link.b]) {
      crossing->emplace_back(link.a, link.b);
    }
  }
  return injector_.schedule(
      "partition", "", temporal,
      [this, crossing] {
        (void)injector_.network_.set_links_up(*crossing, false);
      },
      [this, crossing] {
        (void)injector_.network_.set_links_up(*crossing, true);
      });
}

}  // namespace excovery::faults
