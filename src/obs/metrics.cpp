#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace excovery::obs {

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string_view to_string(MetricDomain domain) noexcept {
  switch (domain) {
    case MetricDomain::kDeterministic: return "deterministic";
    case MetricDomain::kBestEffort: return "best-effort";
    case MetricDomain::kWall: return "wall";
  }
  return "?";
}

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind,
                                 MetricDomain domain, std::string_view unit,
                                 const HistogramSpec& hist) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < descs_.size(); ++i) {
    if (descs_[i].name == name) {
      return MetricId{static_cast<std::uint32_t>(i)};
    }
  }
  MetricDesc desc;
  desc.name = std::string(name);
  desc.kind = kind;
  desc.domain = domain;
  desc.unit = std::string(unit);
  desc.hist = hist;
  descs_.push_back(std::move(desc));
  return MetricId{static_cast<std::uint32_t>(descs_.size() - 1)};
}

MetricId MetricsRegistry::counter(std::string_view name, MetricDomain domain,
                                  std::string_view unit) {
  return intern(name, MetricKind::kCounter, domain, unit, {});
}

MetricId MetricsRegistry::gauge(std::string_view name, MetricDomain domain,
                                std::string_view unit) {
  return intern(name, MetricKind::kGauge, domain, unit, {});
}

MetricId MetricsRegistry::histogram(std::string_view name, MetricDomain domain,
                                    double lo, double hi, std::size_t bins,
                                    std::string_view unit) {
  HistogramSpec spec;
  spec.log_scale = false;
  spec.lo = lo;
  // Degenerate bounds would make the bin width non-positive; widen like
  // stats::Histogram does.
  spec.hi = hi > lo ? hi : lo + 1.0;
  spec.bins = bins == 0 ? 1 : bins;
  return intern(name, MetricKind::kHistogram, domain, unit, spec);
}

MetricId MetricsRegistry::log_histogram(std::string_view name,
                                        MetricDomain domain,
                                        std::string_view unit) {
  HistogramSpec spec;
  spec.log_scale = true;
  spec.bins = kLogBins;
  return intern(name, MetricKind::kHistogram, domain, unit, spec);
}

std::vector<MetricDesc> MetricsRegistry::descriptors() const {
  std::lock_guard lock(mutex_);
  return descs_;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return descs_.size();
}

std::size_t log_bin(double value) noexcept {
  if (!(value > 0.0)) return 0;  // non-positive (and NaN callers pre-filter)
  int exponent = std::ilogb(value);
  long bin = static_cast<long>(exponent) + kLogBinOffset;
  if (bin < 0) return 0;
  if (bin >= static_cast<long>(kLogBins)) return kLogBins - 1;
  return static_cast<std::size_t>(bin);
}

double log_bin_lower(std::size_t bin) noexcept {
  return std::ldexp(1.0, static_cast<int>(bin) - kLogBinOffset);
}

namespace {

/// Fold `value` into the non-overlapping expansion `partials` exactly
/// (Shewchuk grow-expansion).  Non-finite values are kept as a single
/// saturating slot: ±inf and inf-inf=NaN are order-invariant anyway, and
/// letting them enter the two-sum would poison the partials with NaNs.
void accumulate_exact(std::vector<double>& partials, double value) {
  if (!std::isfinite(value)) {
    if (partials.empty() || std::isfinite(partials.front())) {
      partials.insert(partials.begin(), value);
    } else {
      partials.front() += value;
    }
    return;
  }
  std::size_t begin = partials.empty() || std::isfinite(partials.front())
                          ? 0
                          : 1;
  std::size_t used = begin;
  for (std::size_t i = begin; i < partials.size(); ++i) {
    double p = partials[i];
    if (std::abs(value) < std::abs(p)) std::swap(value, p);
    const double hi = value + p;
    const double lo = p - (hi - value);
    if (lo != 0.0) partials[used++] = lo;
    value = hi;
  }
  partials.resize(used);
  partials.push_back(value);  // ascending magnitude, largest last
}

/// Correctly-rounded value of the expansion: the partials are summed from
/// the largest down, with the half-ulp tie broken by the sign of the next
/// partial (as in CPython's math.fsum), so the result only depends on the
/// exact real value the expansion represents.
double round_expansion(const std::vector<double>& partials) {
  const double inf_part =
      !partials.empty() && !std::isfinite(partials.front())
          ? partials.front()
          : 0.0;
  const std::size_t begin = inf_part != 0.0 || std::isnan(inf_part) ? 1 : 0;
  std::size_t n = partials.size();
  double hi = 0.0;
  if (n > begin) {
    double lo = 0.0;
    hi = partials[--n];
    while (n > begin) {
      const double x = hi;
      const double y = partials[--n];
      hi = x + y;
      const double yr = hi - x;
      lo = y - yr;
      if (lo != 0.0) break;
    }
    if (n > begin && ((lo < 0.0 && partials[n - 1] < 0.0) ||
                      (lo > 0.0 && partials[n - 1] > 0.0))) {
      const double y = lo * 2.0;
      const double x = hi + y;
      if (y == x - hi) hi = x;
    }
  }
  if (begin != 0) return inf_part + hi;
  return hi;
}

}  // namespace

MetricCell& MetricsShard::ensure(MetricId id) {
  if (id.index >= cells_.size()) cells_.resize(id.index + 1);
  return cells_[id.index];
}

const HistogramSpec& MetricsShard::spec_for(MetricId id) {
  if (id.index >= spec_cache_.size()) {
    std::vector<MetricDesc> descs = registry_->descriptors();
    spec_cache_.resize(descs.size());
    for (std::size_t i = 0; i < descs.size(); ++i) {
      spec_cache_[i] = descs[i].hist;
    }
  }
  return spec_cache_[id.index];
}

const MetricCell* MetricsShard::cell(MetricId id) const noexcept {
  if (!id.valid() || id.index >= cells_.size()) return nullptr;
  return &cells_[id.index];
}

void MetricsShard::add(MetricId id, std::uint64_t n) {
  if (!id.valid()) return;
  ensure(id).count += n;
}

void MetricsShard::set_gauge(MetricId id, std::int64_t value) {
  if (!id.valid()) return;
  MetricCell& cell = ensure(id);
  cell.gauge_last = value;
  cell.gauge_max = std::max(cell.gauge_max, value);
  cell.gauge_set = true;
}

void MetricsShard::observe(MetricId id, double value) {
  if (!id.valid()) return;
  MetricCell& cell = ensure(id);
  if (std::isnan(value)) {
    ++cell.nan_count;
    return;
  }
  ++cell.count;
  accumulate_exact(cell.sum_parts, value);
  cell.sum = round_expansion(cell.sum_parts);
  cell.min = std::min(cell.min, value);
  cell.max = std::max(cell.max, value);

  const HistogramSpec& spec = spec_for(id);
  if (spec.log_scale) {
    if (cell.bins.empty()) cell.bins.resize(kLogBins, 0);
    ++cell.bins[log_bin(value)];
    return;
  }
  if (cell.bins.empty()) cell.bins.resize(spec.bins + 2, 0);
  if (value < spec.lo) {
    ++cell.bins.front();
  } else if (value >= spec.hi) {
    ++cell.bins.back();
  } else {
    double width = (spec.hi - spec.lo) / static_cast<double>(spec.bins);
    auto bin = static_cast<std::size_t>((value - spec.lo) / width);
    if (bin >= spec.bins) bin = spec.bins - 1;
    ++cell.bins[bin + 1];
  }
}

void MetricsShard::merge_from(const MetricsShard& other) {
  if (other.cells_.size() > cells_.size()) {
    cells_.resize(other.cells_.size());
  }
  for (std::size_t i = 0; i < other.cells_.size(); ++i) {
    const MetricCell& src = other.cells_[i];
    MetricCell& dst = cells_[i];
    dst.count += src.count;
    dst.nan_count += src.nan_count;
    if (src.gauge_set) {
      dst.gauge_max = std::max(dst.gauge_max, src.gauge_max);
      // `last` has no cross-shard meaning; keep the maximum so the merged
      // value stays partition-invariant.
      dst.gauge_last = dst.gauge_max;
      dst.gauge_set = true;
    }
    // Fold the source expansion in exactly: the merged sum stays a pure
    // function of the observed multiset no matter how observations were
    // partitioned across shards or in which order shards merge.
    for (double part : src.sum_parts) {
      accumulate_exact(dst.sum_parts, part);
    }
    if (!src.sum_parts.empty()) {
      dst.sum = round_expansion(dst.sum_parts);
    }
    dst.min = std::min(dst.min, src.min);
    dst.max = std::max(dst.max, src.max);
    if (!src.bins.empty()) {
      if (dst.bins.size() < src.bins.size()) dst.bins.resize(src.bins.size());
      for (std::size_t b = 0; b < src.bins.size(); ++b) {
        dst.bins[b] += src.bins[b];
      }
    }
  }
}

}  // namespace excovery::obs
