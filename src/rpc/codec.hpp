// XML-RPC message codec.
//
// The prototype's master and nodes "communicate synchronously using
// extensible markup language remote procedure calls (XML-RPC)" (§VI-A,
// ref [23], Winer's spec).  This codec implements the spec's data model:
// <methodCall> / <methodResponse>, scalar types (i4/int, boolean, double,
// string, base64, dateTime omitted), <array> and <struct>, plus the widely
// deployed <nil/> extension — mapped onto excovery::Value.
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/value.hpp"
#include "xml/dom.hpp"

namespace excovery::rpc {

/// A remote procedure invocation.
struct MethodCall {
  std::string method;
  ValueArray params;
};

/// The outcome of an invocation: a result value or a fault.
struct MethodResponse {
  bool is_fault = false;
  Value result;          ///< valid when !is_fault
  int fault_code = 0;    ///< valid when is_fault
  std::string fault_string;

  static MethodResponse success(Value value) {
    MethodResponse r;
    r.result = std::move(value);
    return r;
  }
  static MethodResponse fault(int code, std::string message) {
    MethodResponse r;
    r.is_fault = true;
    r.fault_code = code;
    r.fault_string = std::move(message);
    return r;
  }
};

/// Serialise a call/response to XML-RPC document text.
std::string encode(const MethodCall& call);
std::string encode(const MethodResponse& response);

/// Parse XML-RPC document text.
Result<MethodCall> decode_call(const std::string& xml_text);
Result<MethodResponse> decode_response(const std::string& xml_text);

/// Value <-> <value> element (exposed for tests and for embedding values in
/// experiment documents).
void encode_value(const Value& value, xml::Element& parent);
Result<Value> decode_value(const xml::Element& value_element);

}  // namespace excovery::rpc
