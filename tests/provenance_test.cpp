// Causal provenance tracing (DESIGN.md §16): lineage log retention modes,
// critical-path extraction, flight-recorder dumps, and the end-to-end
// determinism contracts — provenance rows are bit-identical across worker
// counts and forced retries, and the conditioned package never changes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/obs_switch.hpp"
#include "common/value.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/recorder.hpp"
#include "sd/mdns.hpp"
#include "sim/lineage.hpp"
#include "storage/package.hpp"

namespace excovery::obs {
namespace {

using core::ExperimentDescription;
using core::MasterOptions;
using core::SimPlatform;
using core::SimPlatformConfig;
using core::scenario::TwoPartyOptions;

#if EXCOVERY_OBS_ENABLED

// ---- lineage log ------------------------------------------------------------

TEST(LineageLog, RingIsBoundedWhileRecordedKeepsCounting) {
  sim::LineageLog log(4);
  log.set_graph_enabled(true);
  log.begin_run(9, 2);
  EXPECT_EQ(log.run_id(), 9u);
  EXPECT_EQ(log.attempt(), 2u);
  const std::uint16_t node = log.intern("n0");
  for (int i = 0; i < 10; ++i) {
    log.record(sim::LineageKind::kSend, 0, 0,
               sim::SimTime(i * 1000), node, 0, 0);
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.recent_count(), 4u);
  // Ring keeps the most recent events, oldest first.
  std::vector<std::uint64_t> ids;
  log.for_each_recent(
      [&](const sim::LineageEvent& event) { ids.push_back(event.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{7, 8, 9, 10}));
  // The graph, unlike the ring, retained everything: events()[i].id == i+1.
  ASSERT_EQ(log.events().size(), 10u);
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    EXPECT_EQ(log.events()[i].id, i + 1);
  }
}

TEST(LineageLog, BeginRunResetsIdsRingAndGraph) {
  sim::LineageLog log(8);
  log.set_graph_enabled(true);
  log.begin_run(1, 1);
  log.record(sim::LineageKind::kRoot, 0, 0, sim::SimTime(0), 0, 0, 0);
  log.record(sim::LineageKind::kSend, 1, 0, sim::SimTime(1), 0, 0, 0);
  EXPECT_EQ(log.events().size(), 2u);
  log.begin_run(2, 1);
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.recent_count(), 0u);
  EXPECT_EQ(log.recorded(), 0u);
  // Ids restart at 1 so parent links stay valid indices into the new graph.
  EXPECT_EQ(log.record(sim::LineageKind::kRoot, 0, 0, sim::SimTime(0), 0, 0, 0),
            1u);
}

TEST(LineageLog, InternerIsStableAcrossRuns) {
  sim::LineageLog log(4);
  const std::uint16_t alpha = log.intern("alpha");
  const std::uint16_t beta = log.intern("beta");
  EXPECT_NE(alpha, 0);
  EXPECT_NE(alpha, beta);
  EXPECT_EQ(log.intern("alpha"), alpha);
  EXPECT_EQ(log.name(alpha), "alpha");
  EXPECT_EQ(log.name(0), "");
  EXPECT_EQ(log.intern(""), 0);  // reserved "no label" id
  log.begin_run(5, 1);  // interner survives run resets
  EXPECT_EQ(log.intern("alpha"), alpha);
  EXPECT_EQ(log.name(beta), "beta");
}

TEST(LineageLog, GraphLatchAppliesFromNextBeginRun) {
  sim::LineageLog log(4);
  log.begin_run(1, 1);
  log.set_graph_enabled(true);  // mid-run: must not start retaining
  log.record(sim::LineageKind::kSend, 0, 0, sim::SimTime(0), 0, 0, 0);
  EXPECT_TRUE(log.events().empty());
  log.begin_run(1, 2);
  log.record(sim::LineageKind::kSend, 0, 0, sim::SimTime(0), 0, 0, 0);
  EXPECT_EQ(log.events().size(), 1u);
  log.set_graph_enabled(false);
  log.record(sim::LineageKind::kSend, 0, 0, sim::SimTime(1), 0, 0, 0);
  EXPECT_EQ(log.events().size(), 2u);  // still latched on for this run
  log.begin_run(1, 3);
  log.record(sim::LineageKind::kSend, 0, 0, sim::SimTime(0), 0, 0, 0);
  EXPECT_TRUE(log.events().empty());
}

// ---- critical-path extraction ----------------------------------------------

/// Hand-built graph: root -> query -> send -> deliver -> sd_service_add.
struct HandBuiltLog {
  sim::LineageLog log{64};
  std::uint16_t n0, n1, type, svc, add;

  HandBuiltLog() {
    log.set_graph_enabled(true);
    log.begin_run(1, 1);
    n0 = log.intern("n0");
    n1 = log.intern("n1");
    type = log.intern("_t._udp");
    svc = log.intern("svc");
    add = log.intern("sd_service_add");
  }

  std::uint64_t event(sim::LineageKind kind, std::uint64_t parent,
                      std::uint64_t uid, std::int64_t t_ns, std::uint16_t node,
                      std::uint16_t peer, std::uint16_t label) {
    return log.record(kind, parent, uid, sim::SimTime(t_ns), node, peer, label);
  }
};

TEST(Provenance, ExtractionWalksChainToRootWithPerEdgeLatency) {
  HandBuiltLog h;
  std::uint64_t root =
      h.event(sim::LineageKind::kRoot, 0, 0, 0, h.n1, 0, h.type);
  std::uint64_t query =
      h.event(sim::LineageKind::kQuery, root, 1, 100, h.n1, 0, h.type);
  std::uint64_t send =
      h.event(sim::LineageKind::kSend, query, 7, 150, h.n1, 0, 0);
  std::uint64_t deliver =
      h.event(sim::LineageKind::kDeliver, send, 7, 400, h.n0, 0, 0);
  h.event(sim::LineageKind::kSdEvent, deliver, 0, 1000, h.n1, h.svc, h.add);

  std::vector<CriticalPath> paths = extract_critical_paths(h.log);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(path.node, "n1");
  EXPECT_EQ(path.instance, "svc");
  EXPECT_EQ(path.found_ns, 1000);
  EXPECT_EQ(path.total_ns, 1000);
  ASSERT_EQ(path.steps.size(), 5u);
  EXPECT_EQ(path.steps[0].kind, "root");
  EXPECT_EQ(path.steps[1].kind, "query");
  EXPECT_EQ(path.steps[1].detail, "_t._udp round 1");
  EXPECT_EQ(path.steps[2].kind, "send");
  EXPECT_EQ(path.steps[3].kind, "deliver");
  EXPECT_EQ(path.steps[4].kind, "sd_event");
  EXPECT_EQ(path.steps[4].detail, "sd_service_add svc");
  // Per-edge latency: elapsed simulated time since the previous step.
  EXPECT_EQ(path.steps[0].latency_ns, 0);
  EXPECT_EQ(path.steps[1].latency_ns, 100);
  EXPECT_EQ(path.steps[2].latency_ns, 50);
  EXPECT_EQ(path.steps[3].latency_ns, 250);
  EXPECT_EQ(path.steps[4].latency_ns, 600);
}

TEST(Provenance, OnlyFirstDiscoveryPerNodeInstanceIsAttributed) {
  HandBuiltLog h;
  std::uint64_t root =
      h.event(sim::LineageKind::kRoot, 0, 0, 0, h.n1, 0, h.type);
  h.event(sim::LineageKind::kSdEvent, root, 0, 500, h.n1, h.svc, h.add);
  // Re-report of the same (node, instance): not *the* discovery.
  h.event(sim::LineageKind::kSdEvent, root, 0, 900, h.n1, h.svc, h.add);
  // Same instance on another node: its own path.
  h.event(sim::LineageKind::kSdEvent, root, 0, 700, h.n0, h.svc, h.add);
  // A non-discovery sd event is ignored entirely.
  h.event(sim::LineageKind::kSdEvent, root, 0, 800, h.n1, 0,
          h.log.intern("sd_init_done"));

  std::vector<CriticalPath> paths = extract_critical_paths(h.log);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].node, "n1");
  EXPECT_EQ(paths[0].found_ns, 500);
  EXPECT_EQ(paths[1].node, "n0");
}

TEST(Provenance, MalformedParentLinksTerminateTheWalk) {
  HandBuiltLog h;
  // Forward/self parent references must not loop or walk out of bounds.
  h.event(sim::LineageKind::kSdEvent, 99, 0, 100, h.n1, h.svc, h.add);
  std::vector<CriticalPath> paths = extract_critical_paths(h.log);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].steps.size(), 1u);
  EXPECT_EQ(paths[0].steps[0].kind, "sd_event");
}

TEST(Provenance, LedgerSortsRowsByRunPathSeq) {
  ProvenanceLedger ledger;
  CriticalPath path;
  path.node = "n1";
  path.instance = "svc";
  ProvenanceStep step;
  step.kind = "root";
  path.steps.push_back(step);
  step.kind = "sd_event";
  step.latency_ns = 1500000000;
  path.steps.push_back(step);
  ledger.record_run(2, {path});
  ledger.record_run(1, {path, path});
  EXPECT_EQ(ledger.size(), 6u);
  std::vector<storage::ProvenanceRow> rows = ledger.sorted();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].run_id, 1);
  EXPECT_EQ(rows[0].path, 0);
  EXPECT_EQ(rows[0].seq, 0);
  EXPECT_EQ(rows[0].kind, "root");
  EXPECT_EQ(rows[1].seq, 1);
  EXPECT_DOUBLE_EQ(rows[1].latency, 1.5);
  EXPECT_EQ(rows[2].path, 1);
  EXPECT_EQ(rows[4].run_id, 2);
}

// ---- deterministic mDNS critical path --------------------------------------

/// A two-node mDNS rig with lineage retention: n0 publishes (SM), n1
/// searches (SU).  Probing and announcements are disabled so discovery is
/// driven purely by query rounds — the shape the attribution test pins down.
struct MdnsRig {
  sim::Scheduler scheduler;
  net::Network network;
  sim::LineageLog log;
  std::vector<std::pair<std::string, std::string>> events;
  std::vector<std::unique_ptr<sd::MdnsAgent>> agents;

  MdnsRig() : network(scheduler, net::Topology::full_mesh(2), 1) {
    network.set_lineage(&log);
    log.set_graph_enabled(true);
    log.begin_run(1, 1);
    sd::MdnsConfig config;
    config.probe_count = 0;
    config.announce_count = 0;
    for (net::NodeId i = 0; i < 2; ++i) {
      agents.push_back(std::make_unique<sd::MdnsAgent>(network, i, config));
      std::string name = network.topology().node(i).name;
      // Mirror what core::EventRecorder does when wired into a platform:
      // every recorded sd event becomes a lineage node whose parent is the
      // ambient causal context (the packet delivery that raised it).
      agents.back()->set_event_sink(
          [this, name](std::string_view event, const Value& param) {
            events.emplace_back(name,
                                std::string(event) + ":" + param.to_text());
            const std::uint16_t peer =
                param.is_string() ? log.intern(param.as_string()) : 0;
            log.record(sim::LineageKind::kSdEvent, scheduler.current_context(),
                       0, scheduler.now(), log.intern(name), peer,
                       log.intern(event));
          });
    }
  }

  sd::ServiceInstance instance(const std::string& name) {
    sd::ServiceInstance out;
    out.instance_name = name;
    out.type = "_t._udp";
    out.port = 80;
    return out;
  }

  int count_event(const std::string& node, const std::string& tagged) {
    int n = 0;
    for (const auto& [en, ev] : events) {
      if (en == node && ev == tagged) ++n;
    }
    return n;
  }

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  }
};

std::vector<const ProvenanceStep*> steps_of_kind(const CriticalPath& path,
                                                 const std::string& kind) {
  std::vector<const ProvenanceStep*> out;
  for (const ProvenanceStep& step : path.steps) {
    if (step.kind == kind) out.push_back(&step);
  }
  return out;
}

TEST(Provenance, UndisturbedDiscoveryIsAttributedToRoundOne) {
  MdnsRig rig;
  ASSERT_TRUE(rig.agents[0]->init(sd::SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(rig.agents[1]->init(sd::SdRole::kServiceUser, {}).ok());
  rig.run_for(0.2);
  ASSERT_TRUE(rig.agents[0]->start_publish(rig.instance("svc")).ok());
  ASSERT_TRUE(rig.agents[1]->start_search("_t._udp").ok());
  rig.run_for(3.0);
  ASSERT_EQ(rig.count_event("n1", "sd_service_add:svc"), 1);

  std::vector<CriticalPath> paths = extract_critical_paths(rig.log);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(path.node, "n1");
  EXPECT_EQ(path.instance, "svc");
  EXPECT_EQ(path.steps.front().kind, "root");
  std::vector<const ProvenanceStep*> queries = steps_of_kind(path, "query");
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_NE(queries[0]->detail.find("round 1"), std::string::npos)
      << queries[0]->detail;
  // First query fires 20-120 ms after start_search; no retransmission.
  EXPECT_LT(path.total_ns, 1000000000LL);
}

// The acceptance scenario: the first mDNS query round is lost, so the
// discovery can only close via the second-round retransmission — and the
// attributed critical path must say exactly that.
TEST(Provenance, LostFirstQueryRoundIsClosedBySecondRoundRetransmission) {
  MdnsRig rig;
  ASSERT_TRUE(rig.agents[0]->init(sd::SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(rig.agents[1]->init(sd::SdRole::kServiceUser, {}).ok());
  rig.run_for(0.2);
  ASSERT_TRUE(rig.agents[0]->start_publish(rig.instance("svc")).ok());

  // Drop the first packet the searcher transmits: the round-1 query.
  int outbound = 0;
  rig.network.add_filter(
      {net::NodeId(1), net::Direction::kTransmit},
      [&outbound](net::NodeId, net::Direction, net::Packet&) {
        return outbound++ == 0 ? net::FilterVerdict::drop("test:first-query")
                               : net::FilterVerdict::pass();
      });

  ASSERT_TRUE(rig.agents[1]->start_search("_t._udp").ok());
  rig.run_for(4.0);
  ASSERT_EQ(rig.count_event("n1", "sd_service_add:svc"), 1);

  std::vector<CriticalPath> paths = extract_critical_paths(rig.log);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(path.node, "n1");
  EXPECT_EQ(path.instance, "svc");
  EXPECT_EQ(path.steps.front().kind, "root");
  EXPECT_EQ(path.steps.back().kind, "sd_event");
  EXPECT_EQ(path.steps.back().detail, "sd_service_add svc");

  // Both query rounds are on the path — the retry chains to the lost round
  // — and the closing retransmission is round 2.
  std::vector<const ProvenanceStep*> queries = steps_of_kind(path, "query");
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_NE(queries[0]->detail.find("round 1"), std::string::npos);
  EXPECT_NE(queries[1]->detail.find("round 2"), std::string::npos);
  // Round 2 fires one query_interval (1 s) after round 1.
  EXPECT_GE(queries[1]->latency_ns, 900000000LL);
  // The answer and its delivery sit between the closing query and the
  // discovery event.
  EXPECT_FALSE(steps_of_kind(path, "answer").empty());
  EXPECT_FALSE(steps_of_kind(path, "deliver").empty());
  // Attributed latency covers the lost round's back-off.
  EXPECT_GT(path.total_ns, 1000000000LL);
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RenderShowsRunHeaderAndRecentEvents) {
  HandBuiltLog h;
  std::uint64_t root =
      h.event(sim::LineageKind::kRoot, 0, 0, 0, h.n1, 0, h.type);
  h.event(sim::LineageKind::kQuery, root, 2, 1500000000, h.n1, 0, h.type);
  std::string dump = render_flight_dump(h.log, "watchdog expired");
  EXPECT_NE(dump.find("# ExCovery flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("# run 1 attempt 1: watchdog expired"),
            std::string::npos);
  EXPECT_NE(dump.find("2 retained event(s) of 2 recorded"), std::string::npos);
  EXPECT_NE(dump.find("root"), std::string::npos);
  EXPECT_NE(dump.find("_t._udp round 2"), std::string::npos);
}

TEST(FlightRecorder, WriteDumpCreatesDirectoryAndNamedFile) {
  HandBuiltLog h;
  h.log.begin_run(7, 3);
  h.event(sim::LineageKind::kRoot, 0, 0, 0, h.n1, 0, h.type);
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "excovery-flight-unit")
          .string();
  std::filesystem::remove_all(dir);
  Result<std::string> path = write_flight_dump(h.log, dir, "forced abort");
  ASSERT_TRUE(path.ok()) << path.error().to_string();
  EXPECT_NE(path.value().find("flight-run7-attempt3.txt"), std::string::npos);
  std::ifstream file(path.value());
  ASSERT_TRUE(file.good());
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "# ExCovery flight recorder");
  std::filesystem::remove_all(dir);
}

#endif  // EXCOVERY_OBS_ENABLED

// ---- end to end -------------------------------------------------------------

struct Rig {
  ExperimentDescription description;
  std::unique_ptr<SimPlatform> platform;
};

Result<Rig> make_rig(int replications) {
  TwoPartyOptions options;
  options.replications = replications;
  options.environment_count = 1;
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 42;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<SimPlatform> platform,
                       SimPlatform::create(description, std::move(config)));
  return Rig{std::move(description), std::move(platform)};
}

Result<storage::ExperimentPackage> run_experiment(Rig& rig,
                                                  MasterOptions options) {
  core::ExperiMaster master(rig.description, *rig.platform,
                            std::move(options));
  return master.execute();
}

TEST(ProvenanceEndToEnd, RowsIdenticalAcrossWorkerCountsAndRetries) {
  std::vector<std::string> rendered;
  std::vector<Bytes> packages;
  // For a given retry pattern, sequential and sharded execution must
  // attribute the exact same critical paths: extraction is a pure function
  // of each run's deterministic lineage graph, and aborted attempts never
  // record.  (A retry legitimately shifts later absolute sim timestamps —
  // platform time never rewinds — so retry vs no-retry is not compared.)
  auto flaky_hook = [](std::int64_t run_id, int attempt) {
    return run_id == 2 && attempt == 1;  // first attempt of run 2 dies
  };
  struct Variant {
    std::size_t workers;
    bool flaky;
  };
  const Variant variants[] = {{1u, false}, {3u, false}, {1u, true},
                              {3u, true}};
  for (const Variant& variant : variants) {
    Result<Rig> rig = make_rig(3);
    ASSERT_TRUE(rig.ok());
    ObsContext obs;
    MasterOptions options;
    options.obs = &obs;
    options.run_workers = variant.workers;
    if (variant.flaky) options.abort_hook = flaky_hook;
    Result<storage::ExperimentPackage> package =
        run_experiment(rig.value(), std::move(options));
    ASSERT_TRUE(package.ok()) << package.error().to_string();
    packages.push_back(package.value().database().serialize());
    rendered.push_back(obs.provenance_json());
#if EXCOVERY_OBS_ENABLED
    EXPECT_GT(obs.provenance().size(), 0u);
    // Exactly one path set per run: the retried run did not double-record.
    std::vector<storage::ProvenanceRow> rows = obs.provenance().sorted();
    for (std::size_t i = 1; i < rows.size(); ++i) {
      const storage::ProvenanceRow& a = rows[i - 1];
      const storage::ProvenanceRow& b = rows[i];
      EXPECT_FALSE(a.run_id == b.run_id && a.path == b.path &&
                   a.seq == b.seq);
    }
#endif
  }
  EXPECT_EQ(rendered[0], rendered[1]) << rendered[0];
  EXPECT_EQ(packages[0], packages[1]);
  EXPECT_EQ(rendered[2], rendered[3]) << rendered[2];
  EXPECT_EQ(packages[2], packages[3]);
}

TEST(ProvenanceEndToEnd, ExportIsExplicitAndFillsProvenanceTable) {
  Result<Rig> rig = make_rig(3);
  ASSERT_TRUE(rig.ok());
  ObsContext obs;
  MasterOptions options;
  options.obs = &obs;
  Result<storage::ExperimentPackage> package =
      run_experiment(rig.value(), std::move(options));
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  // Attaching obs never writes rows by itself — export is explicit, so the
  // package stays byte-identical whether or not provenance was collected.
  EXPECT_TRUE(package.value().provenance().empty());
  ASSERT_TRUE(obs.export_provenance(package.value()).ok());
  std::vector<storage::ProvenanceRow> rows = package.value().provenance();
#if EXCOVERY_OBS_ENABLED
  ASSERT_FALSE(rows.empty());
  // Every path starts at its topmost causal ancestor with zero latency; in
  // the two-party scenario the discovery descends from the SM's init event
  // (the announcement chain), so the first step is that ambient sd_event.
  EXPECT_EQ(rows[0].run_id, 1);
  EXPECT_EQ(rows[0].path, 0);
  EXPECT_EQ(rows[0].seq, 0);
  EXPECT_DOUBLE_EQ(rows[0].latency, 0.0);
  bool saw_discovery = false;
  for (const storage::ProvenanceRow& row : rows) {
    if (row.kind == "sd_event" &&
        row.detail.find("sd_service_add") != std::string::npos) {
      saw_discovery = true;
    }
  }
  EXPECT_TRUE(saw_discovery);
  EXPECT_EQ(rows.size(), obs.provenance().size());
#else
  EXPECT_TRUE(rows.empty());
  // Same serializer as OBS=ON, over an empty ledger.
  EXPECT_EQ(obs.provenance_json(), "{\n\"paths\":[\n]\n}\n");
#endif
}

TEST(ProvenanceEndToEnd, FailedAttemptDumpsFlightRecorder) {
  Result<Rig> rig = make_rig(3);
  ASSERT_TRUE(rig.ok());
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "excovery-flight-e2e")
          .string();
  std::filesystem::remove_all(dir);
  MasterOptions options;
  options.flight_dir = dir;
  options.abort_hook = [](std::int64_t run_id, int attempt) {
    return run_id == 2 && attempt == 1;
  };
  Result<storage::ExperimentPackage> package =
      run_experiment(rig.value(), std::move(options));
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  const std::string dump =
      (std::filesystem::path(dir) / "flight-run2-attempt1.txt").string();
#if EXCOVERY_OBS_ENABLED
  // Exactly the failed attempt dumped; successful attempts never do.
  ASSERT_TRUE(std::filesystem::exists(dump));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::ifstream file(dump);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "# ExCovery flight recorder");
  std::getline(file, line);
  EXPECT_NE(line.find("# run 2 attempt 1"), std::string::npos) << line;
#else
  EXPECT_FALSE(std::filesystem::exists(dump));
#endif
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace excovery::obs
