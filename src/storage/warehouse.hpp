// Dimensional (star-schema) export of experiment packages.
//
// §IV-F: "Several future improvements are possible, for example by using a
// dimensional database model to store experiments in a data warehouse
// structure."  Implemented here: events from one or many packages are
// decomposed into dimension tables (experiments, runs, nodes, event types)
// plus one fact table referencing them by surrogate keys — the layout OLAP
// tooling expects.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/database.hpp"
#include "storage/package.hpp"

namespace excovery::storage {

/// Build a star schema from packages.  Resulting tables:
///   DimExperiment(ExpKey, ExperimentID, Name, EEVersion)
///   DimRun(RunKey, ExpKey, RunID, StartTime)
///   DimNode(NodeKey, NodeID)
///   DimEventType(TypeKey, EventType)
///   FactEvent(ExpKey, RunKey, NodeKey, TypeKey, CommonTime, Parameter)
class Warehouse {
 public:
  /// Add one experiment under an id; events become facts.
  Status add(const std::string& experiment_id,
             const ExperimentPackage& package);

  const Database& database() const noexcept { return db_; }

  std::size_t fact_count() const;
  std::size_t experiment_count() const;

  /// Aggregate: number of fact events per (experiment, event type),
  /// rendered as "experiment event_type count" lines — the kind of
  /// cross-experiment roll-up the warehouse structure is for.
  std::string rollup_by_type() const;

  /// Mean CommonTime delta between two event types within each run of an
  /// experiment (e.g. sd_start_search -> sd_service_add = t_R), computed
  /// from the star schema alone.
  Result<double> mean_interval(const std::string& experiment_id,
                               const std::string& from_type,
                               const std::string& to_type) const;

  Status save(const std::string& path) const { return db_.save(path); }

 private:
  Warehouse& ensure_schema();
  std::int64_t node_key(const std::string& node_id);
  std::int64_t type_key(const std::string& event_type);

  Database db_;
  bool schema_ready_ = false;
  std::int64_t next_exp_key_ = 1;
  std::int64_t next_run_key_ = 1;
  std::map<std::string, std::int64_t> node_keys_;
  std::map<std::string, std::int64_t> type_keys_;
  std::map<std::string, std::int64_t> exp_keys_;
};

}  // namespace excovery::storage
