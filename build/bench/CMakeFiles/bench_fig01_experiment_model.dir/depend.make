# Empty dependencies file for bench_fig01_experiment_model.
# This may be replaced when dependencies are built.
