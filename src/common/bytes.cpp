#include "common/bytes.hpp"

namespace excovery {

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::string(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b.data(), b.size());
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

void ByteWriter::value(const Value& v) {
  u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      u8(v.as_bool() ? 1 : 0);
      break;
    case ValueType::kInt:
      i64(v.as_int());
      break;
    case ValueType::kDouble:
      f64(v.as_double());
      break;
    case ValueType::kString:
      string(v.as_string());
      break;
    case ValueType::kBytes:
      blob(v.as_bytes());
      break;
    case ValueType::kArray: {
      const ValueArray& arr = v.as_array();
      u32(static_cast<std::uint32_t>(arr.size()));
      for (const Value& item : arr) value(item);
      break;
    }
    case ValueType::kMap: {
      const ValueMap& map = v.as_map();
      u32(static_cast<std::uint32_t>(map.size()));
      for (const auto& [k, item] : map) {
        string(k);
        value(item);
      }
      break;
    }
  }
}

Status ByteReader::need(std::size_t n) const {
  if (pos_ + n > size_) {
    return err_io("byte stream truncated: need " + std::to_string(n) +
                  " bytes at offset " + std::to_string(pos_) + " of " +
                  std::to_string(size_));
  }
  return {};
}

Result<std::uint8_t> ByteReader::u8() {
  EXC_TRY(need(1));
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  EXC_TRY(need(2));
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  EXC_TRY(need(4));
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  EXC_TRY(need(8));
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<std::int64_t> ByteReader::i64() {
  EXC_ASSIGN_OR_RETURN(std::uint64_t v, u64());
  return static_cast<std::int64_t>(v);
}

Result<double> ByteReader::f64() {
  EXC_ASSIGN_OR_RETURN(std::uint64_t bits, u64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<std::string> ByteReader::string() {
  EXC_ASSIGN_OR_RETURN(std::uint32_t len, u32());
  EXC_TRY(need(len));
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

Result<Bytes> ByteReader::blob() {
  EXC_ASSIGN_OR_RETURN(std::uint32_t len, u32());
  return raw(len);
}

Result<Bytes> ByteReader::raw(std::size_t size) {
  EXC_TRY(need(size));
  Bytes out(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return out;
}

Result<Value> ByteReader::value() {
  EXC_ASSIGN_OR_RETURN(std::uint8_t tag, u8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value{};
    case ValueType::kBool: {
      EXC_ASSIGN_OR_RETURN(std::uint8_t b, u8());
      return Value{b != 0};
    }
    case ValueType::kInt: {
      EXC_ASSIGN_OR_RETURN(std::int64_t v, i64());
      return Value{v};
    }
    case ValueType::kDouble: {
      EXC_ASSIGN_OR_RETURN(double v, f64());
      return Value{v};
    }
    case ValueType::kString: {
      EXC_ASSIGN_OR_RETURN(std::string v, string());
      return Value{std::move(v)};
    }
    case ValueType::kBytes: {
      EXC_ASSIGN_OR_RETURN(Bytes v, blob());
      return Value{std::move(v)};
    }
    case ValueType::kArray: {
      EXC_ASSIGN_OR_RETURN(std::uint32_t count, u32());
      ValueArray arr;
      arr.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        EXC_ASSIGN_OR_RETURN(Value item, value());
        arr.push_back(std::move(item));
      }
      return Value{std::move(arr)};
    }
    case ValueType::kMap: {
      EXC_ASSIGN_OR_RETURN(std::uint32_t count, u32());
      ValueMap map;
      for (std::uint32_t i = 0; i < count; ++i) {
        EXC_ASSIGN_OR_RETURN(std::string key, string());
        EXC_ASSIGN_OR_RETURN(Value item, value());
        map.emplace(std::move(key), std::move(item));
      }
      return Value{std::move(map)};
    }
  }
  return err_io("unknown value tag " + std::to_string(tag));
}

}  // namespace excovery
