// Fig. 1 — "Model of a generic experiment process": a black box with
// controllable factors (inputs) and observable responses (outputs).
//
// Regenerated from running code: a live factor sweep through a complete
// experiment, printing the factor -> response table the model describes.
// The factor is the injected message-loss level; the responses are the
// observed responsiveness and mean discovery latency.
#include "bench_common.hpp"

using namespace excovery;

int main() {
  bench::banner("bench_fig01_experiment_model",
                "Fig. 1: generic experiment process (factors -> black box "
                "process -> responses)");

  core::scenario::TwoPartyOptions options;
  options.replications = 20;
  options.environment_count = 2;
  options.deadline_s = 8.0;
  options.loss_levels = {0.0, 0.25, 0.5};

  bench::Executed executed =
      bench::must(bench::execute(options), "experiment");

  std::printf("\n  factors (inputs)            |  responses (outputs)\n");
  std::printf("  loss level   replication     |  responsiveness(2s)   mean "
              "t_R\n");
  std::printf("  ---------------------------- | ------------------------------"
              "\n");

  std::vector<stats::RunDiscovery> discoveries = bench::must(
      stats::discoveries(executed.package), "discoveries");
  for (std::size_t level = 0; level < options.loss_levels.size(); ++level) {
    std::int64_t lo =
        static_cast<std::int64_t>(level) * options.replications + 1;
    std::int64_t hi = lo + options.replications - 1;
    std::size_t hits = 0;
    std::size_t trials = 0;
    std::vector<double> latencies;
    for (const stats::RunDiscovery& run : discoveries) {
      if (run.run_id < lo || run.run_id > hi) continue;
      ++trials;
      for (const auto& [provider, latency] : run.latencies) {
        latencies.push_back(latency);
        if (latency <= 2.0) {
          ++hits;
          break;
        }
      }
    }
    stats::Proportion p = stats::wilson(hits, trials);
    std::printf("  %-12.2f x%-14d |  %.2f [%.2f..%.2f]     %.3fs\n",
                options.loss_levels[level], options.replications, p.estimate,
                p.lower, p.upper, stats::mean(latencies));
  }

  std::printf(
      "\nmodel check: the controlled factor (loss) visibly moves the\n"
      "responses while everything else is held constant & replicated.\n");
  return 0;
}
