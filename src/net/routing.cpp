#include "net/routing.hpp"

#include <algorithm>
#include <limits>

namespace excovery::net {

namespace {

/// Combined budget for cached row entries (next_hop + dist pairs).  With
/// 8 bytes per entry this bounds steady-state routing memory to ~32 MiB no
/// matter the world size, while small worlds (<= a few thousand nodes)
/// still cache every row and behave exactly like the former eager table.
constexpr std::size_t kRowCacheBudgetEntries = std::size_t{4} << 20;

std::size_t auto_capacity(std::size_t size) {
  if (size == 0) return 1;
  return std::min(size, std::max<std::size_t>(16, kRowCacheBudgetEntries /
                                                      size));
}

}  // namespace

RoutingTable::RoutingTable(const Topology& topology) { rebuild(topology); }

void RoutingTable::rebuild(const Topology& topology) {
  rebuild(topology, LinkSet{});
}

void RoutingTable::rebuild(const Topology& topology, const LinkSet& disabled) {
  size_ = topology.node_count();
  generation_++;
  disabled_ = disabled;
  capacity_ = auto_capacity(size_);
  track_lru_ = capacity_ < size_;

  // CSR adjacency: degree count, prefix sum, fill, then sort each row for
  // deterministic BFS order (ascending node id).
  adj_offset_.assign(size_ + 1, 0);
  for (const Link& link : topology.links()) {
    adj_offset_[link.a + 1]++;
    adj_offset_[link.b + 1]++;
  }
  for (std::size_t i = 0; i < size_; ++i) adj_offset_[i + 1] += adj_offset_[i];
  adj_neighbour_.assign(adj_offset_[size_], kInvalidNode);
  std::vector<std::uint32_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (const Link& link : topology.links()) {
    adj_neighbour_[cursor[link.a]++] = link.b;
    adj_neighbour_[cursor[link.b]++] = link.a;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    std::sort(adj_neighbour_.begin() + adj_offset_[i],
              adj_neighbour_.begin() + adj_offset_[i + 1]);
  }

  // Drop every cached row (slots and their capacity are kept for reuse).
  row_of_.assign(size_, -1);
  for (Row& row : rows_) row.generation = 0;
  scratch_frontier_.reserve(size_);
}

bool RoutingTable::adjacent_in_topology(NodeId a, NodeId b) const noexcept {
  auto begin = adj_neighbour_.begin() + adj_offset_[a];
  auto end = adj_neighbour_.begin() + adj_offset_[a + 1];
  auto it = std::lower_bound(begin, end, b);
  return it != end && *it == b;
}

void RoutingTable::compute_row(NodeId source, Row& row) const {
  row.dist.assign(size_, -1);
  row.next_hop.assign(size_, kInvalidNode);
  scratch_frontier_.clear();
  scratch_frontier_.push_back(source);
  row.dist[source] = 0;
  const bool any_disabled = !disabled_.empty();
  for (std::size_t head = 0; head < scratch_frontier_.size(); ++head) {
    const NodeId current = scratch_frontier_[head];
    const std::int32_t next_dist = row.dist[current] + 1;
    // The next hop toward anything discovered from `current` is the next
    // hop toward `current` itself — or the neighbour, when `current` is the
    // source.  Identical to the former parent-chain walk-back.
    for (std::uint32_t idx = adj_offset_[current];
         idx < adj_offset_[current + 1]; ++idx) {
      const NodeId next = adj_neighbour_[idx];
      if (any_disabled && disabled_.contains(pack_link(current, next))) {
        continue;
      }
      if (row.dist[next] < 0) {
        row.dist[next] = next_dist;
        row.next_hop[next] =
            current == source ? next : row.next_hop[current];
        scratch_frontier_.push_back(next);
      }
    }
  }
}

std::size_t RoutingTable::pick_slot() const {
  std::size_t victim = 0;
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].generation != generation_) return i;  // free slot
    if (rows_[i].last_used < oldest) {
      oldest = rows_[i].last_used;
      victim = i;
    }
  }
  if (rows_.size() < capacity_) {
    rows_.emplace_back();
    return rows_.size() - 1;
  }
  return victim;
}

const RoutingTable::Row& RoutingTable::row_for(NodeId source) const {
  const std::int32_t slot = row_of_[source];
  if (slot >= 0) {
    Row& row = rows_[static_cast<std::size_t>(slot)];
    if (row.generation == generation_ && row.source == source) {
      if (track_lru_) row.last_used = ++tick_;
      return row;
    }
  }
  const std::size_t idx = pick_slot();
  Row& row = rows_[idx];
  // Unmap the evicted source, if the slot still holds a live row.
  if (row.generation == generation_ && row.source < size_ &&
      row_of_[row.source] == static_cast<std::int32_t>(idx)) {
    row_of_[row.source] = -1;
  }
  compute_row(source, row);
  row.source = source;
  row.generation = generation_;
  row.last_used = ++tick_;
  row_of_[source] = static_cast<std::int32_t>(idx);
  return row;
}

void RoutingTable::invalidate_row(NodeId source) const {
  const std::int32_t slot = row_of_[source];
  if (slot < 0) return;
  rows_[static_cast<std::size_t>(slot)].generation = 0;
  row_of_[source] = -1;
}

void RoutingTable::set_link_enabled(NodeId a, NodeId b, bool enabled) {
  if (a >= size_ || b >= size_ || a == b) return;
  if (!adjacent_in_topology(a, b)) return;  // unknown link
  const PackedLink key = pack_link(a, b);
  if (enabled) {
    if (!disabled_.erase(key)) return;  // already enabled
  } else {
    if (!disabled_.insert(key)) return;  // already disabled
  }

  // Selective invalidation: every live row was computed over the pre-toggle
  // graph (earlier toggles invalidated what they touched), so its distances
  // decide whether this toggle can change it — the same conditions the
  // former eager repair used.
  for (Row& row : rows_) {
    if (row.generation != generation_) continue;
    const std::int32_t da = row.dist[a];
    const std::int32_t db = row.dist[b];
    if (enabled) {
      // A new edge between equally-distant nodes (including two nodes in
      // the same unreachable region, da == db == -1) is never a BFS
      // discovery edge and cannot shorten any path.
      if (da == db) continue;
    } else {
      // With the edge still present, its endpoints were either both
      // reachable or both unreachable from the source; removing an edge
      // between unreachable nodes changes nothing.
      if (da < 0) continue;
      // Equal-distance edges are never BFS tree edges and lie on no
      // shortest path, so removing one leaves the row untouched.
      if (da != db + 1 && db != da + 1) continue;
    }
    invalidate_row(row.source);
  }
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return kInvalidNode;
  return row_for(from).next_hop[to];
}

int RoutingTable::hop_count(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return -1;
  return row_for(from).dist[to];
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from >= size_ || to >= size_) return out;
  if (from == to) return {from};
  if (hop_count(from, to) < 0) return out;
  out.push_back(from);
  NodeId current = from;
  while (current != to) {
    current = next_hop(current, to);
    if (current == kInvalidNode) return {};
    out.push_back(current);
  }
  return out;
}

std::size_t RoutingTable::cached_row_count() const noexcept {
  std::size_t count = 0;
  for (const Row& row : rows_) {
    if (row.generation == generation_) ++count;
  }
  return count;
}

void RoutingTable::set_row_cache_capacity(std::size_t rows) {
  capacity_ = std::max<std::size_t>(1, std::min(rows, std::max<std::size_t>(
                                                          1, size_)));
  track_lru_ = capacity_ < size_;
  if (rows_.size() <= capacity_) return;
  // Shrink: keep the most recently used rows, release the rest.
  std::vector<Row> kept;
  kept.reserve(capacity_);
  std::sort(rows_.begin(), rows_.end(), [](const Row& x, const Row& y) {
    return x.last_used > y.last_used;
  });
  row_of_.assign(size_, -1);
  for (Row& row : rows_) {
    if (kept.size() == capacity_) break;
    if (row.generation != generation_) continue;
    row_of_[row.source] = static_cast<std::int32_t>(kept.size());
    kept.push_back(std::move(row));
  }
  rows_ = std::move(kept);
}

std::size_t RoutingTable::memory_bytes() const noexcept {
  std::size_t bytes = adj_offset_.capacity() * sizeof(std::uint32_t) +
                      adj_neighbour_.capacity() * sizeof(NodeId) +
                      disabled_.size() * sizeof(PackedLink) +
                      row_of_.capacity() * sizeof(std::int32_t) +
                      scratch_frontier_.capacity() * sizeof(NodeId);
  for (const Row& row : rows_) {
    bytes += sizeof(Row) + row.next_hop.capacity() * sizeof(NodeId) +
             row.dist.capacity() * sizeof(std::int32_t);
  }
  return bytes;
}

}  // namespace excovery::net
