file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_factors.dir/bench_fig05_factors.cpp.o"
  "CMakeFiles/bench_fig05_factors.dir/bench_fig05_factors.cpp.o.d"
  "bench_fig05_factors"
  "bench_fig05_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
