#include "core/interpreter.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/platform.hpp"

namespace excovery::core {

namespace {
constexpr const char* kComponent = "core.interpreter";

/// Actions whose semantics are synchronous in the paper's model ("emitting
/// <event> upon completion", §V): the interpreter suspends until the
/// completion event from the same node arrives.
const char* completion_event_for(const std::string& action) {
  if (action == "sd_init") return "sd_init_done";
  if (action == "sd_exit") return "sd_exit_done";
  return nullptr;
}

/// Safety net for implicit completion waits: generous, but bounded so a
/// dead node aborts the run (and recovery retries) instead of hanging.
constexpr double kCompletionTimeoutSeconds = 60.0;

}  // namespace

ProcessInterpreter::ProcessInterpreter(
    SimPlatform& platform, const ExperimentDescription& description,
    const RunSpec& run, ActionDispatcher& dispatcher, Kind kind,
    std::string node, std::vector<ProcessAction> actions, std::string label)
    : platform_(platform),
      description_(description),
      run_(run),
      dispatcher_(dispatcher),
      kind_(kind),
      node_(std::move(node)),
      actions_(std::move(actions)),
      label_(std::move(label)) {}

ProcessInterpreter::~ProcessInterpreter() {
  if (wait_) {
    platform_.recorder().bus().unsubscribe(wait_->subscription);
    platform_.scheduler().cancel(wait_->timeout_timer);
  }
  generation_.bump();  // cancels the handle-less timers
}

void ProcessInterpreter::start(CompletionFn on_complete) {
  on_complete_ = std::move(on_complete);
  state_ = State::kRunning;
  // Defer the first step onto the scheduler so all processes of a run start
  // at the same instant but in deterministic creation order.
  platform_.scheduler().schedule(
      sim::SimDuration::zero(),
      [this, alive = generation_.token(), generation = generation_.value()] {
        if (*alive != generation) return;  // interpreter was destroyed
        if (state_ == State::kRunning) step();
      });
}

void ProcessInterpreter::step() {
  while (state_ == State::kRunning) {
    if (next_action_ >= actions_.size()) {
      complete({});
      return;
    }
    const ProcessAction& action = actions_[next_action_++];
    Status status = execute(action);
    if (!status.ok()) {
      complete(std::move(status).context(label_ + ": action '" + action.name +
                                         "'"));
      return;
    }
    if (state_ == State::kWaiting) return;  // suspended; resumed by events
  }
}

void ProcessInterpreter::complete(Status status) {
  if (finished()) return;
  if (status.ok()) {
    state_ = State::kDone;
  } else {
    state_ = State::kFailed;
    error_ = status.error();
    EXC_LOG_WARN(kComponent,
                 label_ << " failed: " << status.error().to_string());
  }
  if (on_complete_) on_complete_(*this);
}

Status ProcessInterpreter::execute(const ProcessAction& action) {
  if (action.name == "wait_for_time") return do_wait_for_time(action);
  if (action.name == "wait_for_event") return do_wait_for_event(action);
  if (action.name == "wait_marker") {
    marker_ = platform_.scheduler().now();
    return {};
  }
  if (action.name == "event_flag") return do_event_flag(action);

  EXC_ASSIGN_OR_RETURN(ValueMap params, resolve_params(action));
  if (kind_ == Kind::kEnvironment || strings::starts_with(action.name, "env_")) {
    return dispatcher_.env_action(action.name, std::move(params));
  }
  // Dispatch, then (for actions that complete asynchronously on the node)
  // suspend until the completion event.  The wait considers events from the
  // dispatch time on, so completions that fire synchronously still match.
  sim::SimTime dispatched_at = platform_.scheduler().now();
  EXC_TRY(dispatcher_.node_action(node_, action.name, std::move(params)));
  if (const char* completion = completion_event_for(action.name)) {
    auto wait = std::make_unique<WaitState>();
    wait->event_name = completion;
    wait->from.push_back(node_);
    wait->needed = 1;
    wait->consider_from = dispatched_at;
    wait->timeout_s = kCompletionTimeoutSeconds;
    wait->fail_on_timeout = true;
    return begin_wait(std::move(wait));
  }
  return {};
}

Status ProcessInterpreter::do_wait_for_time(const ProcessAction& action) {
  const ParamValue* time_param = action.param("time");
  if (!time_param) time_param = action.param("value");
  if (!time_param) return err_validation("wait_for_time needs a duration");
  EXC_ASSIGN_OR_RETURN(Value value, resolve(*time_param));
  EXC_ASSIGN_OR_RETURN(double seconds, value.to_double());
  if (seconds < 0) return err_validation("wait_for_time duration is negative");

  state_ = State::kWaiting;
  platform_.scheduler().schedule(
      sim::SimDuration::from_seconds(seconds),
      [this, alive = generation_.token(), generation = generation_.value()] {
        if (*alive != generation) return;  // interpreter was destroyed
        if (state_ != State::kWaiting) return;
        state_ = State::kRunning;
        step();
      });
  return {};
}

Status ProcessInterpreter::do_event_flag(const ProcessAction& action) {
  const ParamValue* value_param = action.param("value");
  if (!value_param) return err_validation("event_flag needs a value");
  EXC_ASSIGN_OR_RETURN(Value value, resolve(*value_param));
  std::string event_name = strings::strip_quotes(value.to_text());
  Value parameter;
  if (const ParamValue* extra = action.param("parameter")) {
    EXC_ASSIGN_OR_RETURN(parameter, resolve(*extra));
  }
  // Local events occur on the owning node; environment processes raise
  // them on the environment pseudo-node.
  const std::string& where =
      kind_ == Kind::kEnvironment ? kEnvironmentNode : node_;
  platform_.recorder().record(where, event_name, parameter);
  return {};
}

Status ProcessInterpreter::do_wait_for_event(const ProcessAction& action) {
  const ParamValue* event_param = action.param("event_dependency");
  if (!event_param) {
    return err_validation("wait_for_event needs an event_dependency");
  }
  auto wait = std::make_unique<WaitState>();
  EXC_ASSIGN_OR_RETURN(Value event_name, resolve(*event_param));
  wait->event_name = strings::strip_quotes(event_name.to_text());

  if (const ParamValue* from = action.param("from_dependency")) {
    if (from->kind != ParamValue::Kind::kNodeSet) {
      return err_validation("from_dependency must select nodes");
    }
    EXC_ASSIGN_OR_RETURN(wait->from, resolve_node_set(from->node_set));
  }
  if (const ParamValue* param = action.param("param_dependency")) {
    if (param->kind == ParamValue::Kind::kNodeSet) {
      EXC_ASSIGN_OR_RETURN(wait->params, resolve_node_set(param->node_set));
    } else {
      EXC_ASSIGN_OR_RETURN(Value value, resolve(*param));
      wait->params.push_back(strings::strip_quotes(value.to_text()));
    }
  }
  wait->needed = std::max<std::size_t>(1, wait->from.size()) *
                 std::max<std::size_t>(1, wait->params.size());

  // "wait_marker creates a time stamp that will be used by the next
  // wait_for_event call, which considers only events occurring after that
  // time stamp."  Without a marker, every event registered during the run
  // counts (the Fig. 7/10 interplay depends on this: ready_to_init is
  // flagged by the environment before the SU reaches its wait).
  wait->consider_from = marker_.value_or(sim::SimTime::zero());
  marker_.reset();

  if (const ParamValue* timeout = action.param("timeout")) {
    EXC_ASSIGN_OR_RETURN(Value value, resolve(*timeout));
    EXC_ASSIGN_OR_RETURN(double seconds, value.to_double());
    if (seconds > 0) wait->timeout_s = seconds;
  }
  return begin_wait(std::move(wait));
}

Status ProcessInterpreter::begin_wait(std::unique_ptr<WaitState> wait) {
  state_ = State::kWaiting;
  wait_ = std::move(wait);

  // Scan history for matches that already happened (>= consider_from).
  for (const sim::BusEvent& event : platform_.recorder().history()) {
    if (event.time < wait_->consider_from) continue;
    if (event_matches(event, *wait_)) {
      finish_wait();
      return {};
    }
  }

  // Subscribe for live events.
  wait_->subscription = platform_.recorder().bus().subscribe(
      wait_->event_name, [this](const sim::BusEvent& event) {
        if (state_ != State::kWaiting || !wait_) return;
        if (event.time < wait_->consider_from) return;
        if (event_matches(event, *wait_)) finish_wait();
      });

  if (wait_->timeout_s.has_value()) {
    wait_->timeout_timer = platform_.scheduler().schedule(
        sim::SimDuration::from_seconds(*wait_->timeout_s), [this] {
          if (state_ != State::kWaiting || !wait_) return;
          if (wait_->fail_on_timeout) {
            std::string event_name = wait_->event_name;
            platform_.recorder().bus().unsubscribe(wait_->subscription);
            wait_.reset();
            complete(err_timeout("completion event '" + event_name +
                                 "' never arrived"));
            return;
          }
          ++timeouts_;
          // Record the timeout so analyses can distinguish "discovered"
          // from "deadline missed".
          platform_.recorder().record(
              kind_ == Kind::kEnvironment ? kEnvironmentNode : node_,
              "wait_timeout", Value{wait_->event_name});
          finish_wait();
        });
  }
  return {};
}

bool ProcessInterpreter::event_matches(const sim::BusEvent& event,
                                       WaitState& wait) {
  if (event.name != wait.event_name) return false;
  std::string from_key;
  if (!wait.from.empty()) {
    if (std::find(wait.from.begin(), wait.from.end(), event.node) ==
        wait.from.end()) {
      return false;
    }
    from_key = event.node;
  }
  std::string param_key;
  if (!wait.params.empty()) {
    std::string param_text = event.parameter.to_text();
    if (std::find(wait.params.begin(), wait.params.end(), param_text) ==
        wait.params.end()) {
      return false;
    }
    param_key = param_text;
  }
  wait.satisfied.emplace(std::move(from_key), std::move(param_key));
  return wait.satisfied.size() >= wait.needed;
}

void ProcessInterpreter::finish_wait() {
  platform_.recorder().bus().unsubscribe(wait_->subscription);
  platform_.scheduler().cancel(wait_->timeout_timer);
  wait_.reset();
  state_ = State::kRunning;
  // Resume on a fresh scheduler slot to avoid re-entrant publish chains.
  platform_.scheduler().schedule(
      sim::SimDuration::zero(),
      [this, alive = generation_.token(), generation = generation_.value()] {
        if (*alive != generation) return;  // interpreter was destroyed
        if (state_ == State::kRunning) step();
      });
}

Result<Value> ProcessInterpreter::resolve(const ParamValue& value) const {
  switch (value.kind) {
    case ParamValue::Kind::kLiteral:
      return value.literal;
    case ParamValue::Kind::kFactorRef:
      return run_.treatment.level(value.factor_id);
    case ParamValue::Kind::kNodeSet: {
      EXC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           resolve_node_set(value.node_set));
      ValueArray array;
      for (std::string& name : names) array.emplace_back(std::move(name));
      return Value{std::move(array)};
    }
  }
  return err_internal("unhandled param kind");
}

Result<std::vector<std::string>> ProcessInterpreter::resolve_node_set(
    const NodeSetRef& ref) const {
  std::vector<std::string> abstract;
  if (ref.actor.empty()) {
    abstract = run_.acting_nodes();
  } else {
    auto it = run_.actor_map.find(ref.actor);
    if (it == run_.actor_map.end()) {
      return err_not_found("actor '" + ref.actor +
                           "' not present in the run's actor map");
    }
    abstract = it->second;
  }
  if (!ref.instance.empty() && ref.instance != "all") {
    EXC_ASSIGN_OR_RETURN(std::int64_t index, Value{ref.instance}.to_int());
    if (index < 0 || static_cast<std::size_t>(index) >= abstract.size()) {
      return err_invalid(strings::format(
          "instance %lld out of range for actor '%s' (%zu instances)",
          static_cast<long long>(index), ref.actor.c_str(), abstract.size()));
    }
    abstract = {abstract[static_cast<std::size_t>(index)]};
  }
  std::vector<std::string> concrete;
  concrete.reserve(abstract.size());
  for (const std::string& id : abstract) {
    EXC_ASSIGN_OR_RETURN(std::string name, platform_.concrete_name(id));
    concrete.push_back(std::move(name));
  }
  return concrete;
}

Result<ValueMap> ProcessInterpreter::resolve_params(
    const ProcessAction& action) const {
  ValueMap out;
  for (const auto& [name, value] : action.params) {
    EXC_ASSIGN_OR_RETURN(Value resolved, resolve(value));
    out[name] = std::move(resolved);
  }
  return out;
}

}  // namespace excovery::core
