// Intra-experiment run parallelism trajectory (DESIGN.md §10).
//
// Executes one ≥100-run two-party SD experiment at run_workers = 1 (the
// sequential pre-parallelism behaviour, recorded as the 'seed'), 4 and 0
// (hardware concurrency), verifies the conditioned packages are
// bit-identical across all worker counts, and writes the curated
// BENCH_runs.json trajectory consumed by bench/collect_bench.py.
//
// Flags:
//   --smoke     small plan (12 runs), no JSON written — CI correctness gate
//   --runs N    override the plan size
//   --out PATH  override the JSON output path (default BENCH_runs.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"

namespace {

using excovery::Bytes;
using excovery::Result;
using namespace excovery::core;
using scenario::TwoPartyOptions;

struct Measurement {
  std::string label;
  std::size_t run_workers = 1;
  double seconds = 0.0;
  double runs_per_second = 0.0;
  Bytes package_bytes;
};

Result<Measurement> measure(const TwoPartyOptions& options,
                            std::size_t run_workers, std::string label) {
  MasterOptions master_options;
  master_options.run_workers = run_workers;
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       scenario::two_party_sd(options));
  auto start = std::chrono::steady_clock::now();
  EXC_ASSIGN_OR_RETURN(
      excovery::bench::Executed executed,
      excovery::bench::execute_description(std::move(description), 42, {},
                                           std::move(master_options)));
  auto stop = std::chrono::steady_clock::now();
  Measurement m;
  m.label = std::move(label);
  m.run_workers = run_workers;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.runs_per_second =
      static_cast<double>(options.replications) / m.seconds;
  m.package_bytes = executed.package.database().serialize();
  return m;
}

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int runs = 100;
  std::string out = "BENCH_runs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      runs = 12;
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--runs N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  TwoPartyOptions options;
  options.replications = runs;
  options.environment_count = 1;

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("run-parallel bench: %d runs, hardware_concurrency=%u%s\n",
              runs, hardware, smoke ? " (smoke)" : "");

  std::vector<Measurement> measurements;
  for (auto [workers, label] :
       {std::pair<std::size_t, const char*>{1, "workers=1"},
        {4, "workers=4"},
        {0, "workers=hw"}}) {
    Result<Measurement> m = measure(options, workers, label);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   m.error().to_string().c_str());
      return 1;
    }
    std::printf("  %-12s %8.3f s  %8.1f runs/s\n", m.value().label.c_str(),
                m.value().seconds, m.value().runs_per_second);
    measurements.push_back(std::move(m).value());
  }

  for (std::size_t i = 1; i < measurements.size(); ++i) {
    if (measurements[i].package_bytes != measurements[0].package_bytes) {
      std::fprintf(stderr,
                   "FAIL: package at %s differs from sequential bytes\n",
                   measurements[i].label.c_str());
      return 1;
    }
  }
  std::printf("  packages bit-identical across worker counts\n");

  if (smoke) return 0;

  const Measurement& seed = measurements[0];
  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Intra-experiment run parallelism "
      "(bench/bench_run_parallel.cpp, DESIGN.md \\u00a710). 'seed' = "
      "sequential execution (run_workers=1), the only mode before the "
      "run-parallel executor existed; 'current' = sharded execution on "
      "platform replicas at the named worker count, same binary, same "
      "machine. The bench verifies the conditioned package is bit-identical "
      "at every worker count before reporting. NOTE: this bench host "
      "exposes a single CPU, so worker threads time-share one core and the "
      "speedup shows the sharding overhead floor, not the multi-core gain; "
      "on a real multi-core host the run shards execute concurrently.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  bool first = true;
  for (std::size_t i = 1; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    if (!first) json += ",\n";
    first = false;
    json += excovery::strings::format(
        "  \"BM_ExperimentRuns/%s\": {\n"
        "   \"seed\": {\"items_per_second\": %.2f, \"cpu_time_ns\": %.0f},\n"
        "   \"current\": {\"items_per_second\": %.2f, \"cpu_time_ns\": "
        "%.0f},\n"
        "   \"speedup_items_per_second\": %.3f\n"
        "  }",
        m.label.c_str(), seed.runs_per_second,
        seed.seconds / runs * 1e9, m.runs_per_second,
        m.seconds / runs * 1e9, m.runs_per_second / seed.runs_per_second);
  }
  json += "\n }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
