file(REMOVE_RECURSE
  "CMakeFiles/excovery_storage.dir/conditioning.cpp.o"
  "CMakeFiles/excovery_storage.dir/conditioning.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/database.cpp.o"
  "CMakeFiles/excovery_storage.dir/database.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/level2.cpp.o"
  "CMakeFiles/excovery_storage.dir/level2.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/package.cpp.o"
  "CMakeFiles/excovery_storage.dir/package.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/repository.cpp.o"
  "CMakeFiles/excovery_storage.dir/repository.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/table.cpp.o"
  "CMakeFiles/excovery_storage.dir/table.cpp.o.d"
  "CMakeFiles/excovery_storage.dir/warehouse.cpp.o"
  "CMakeFiles/excovery_storage.dir/warehouse.cpp.o.d"
  "libexcovery_storage.a"
  "libexcovery_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
