// Cross-module integration tests: XML text -> execution -> level-3 package
// -> repository; parallel replication determinism; cross-run and
// cross-experiment conditioning guarantees; responsiveness under loss.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"
#include "storage/repository.hpp"

namespace excovery {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery-int-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter = 0;
};

Result<storage::ExperimentPackage> execute_options(
    const core::scenario::TwoPartyOptions& options, std::uint64_t seed) {
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = seed;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::SimPlatform> platform,
      core::SimPlatform::create(description, std::move(config)));
  core::ExperiMaster master(description, *platform);
  return master.execute();
}

TEST(Integration, XmlTextToPackagePipeline) {
  // Author the description as text (as an experimenter would), then run the
  // entire workflow from the parsed document.
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  Result<core::ExperimentDescription> built =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(built.ok());
  std::string xml_text = built.value().to_xml_text();

  Result<core::ExperimentDescription> parsed =
      core::ExperimentDescription::parse(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  Result<net::Topology> topology =
      core::scenario::topology_for(parsed.value(), {});
  ASSERT_TRUE(topology.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 99;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(parsed.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(parsed.value(), *platform.value());
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_EQ(package.value().run_ids().size(), 2u);

  // The stored description equals what was executed.
  EXPECT_EQ(package.value().description_xml().value(),
            parsed.value().to_xml_text());
}

TEST(Integration, PackageSurvivesDiskAndRepository) {
  TempDir dir;
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  Result<storage::ExperimentPackage> package = execute_options(options, 7);
  ASSERT_TRUE(package.ok());

  Result<storage::Repository> repo =
      storage::Repository::open((dir.path / "repo").string());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo.value().store("exp-1", package.value()).ok());

  Result<storage::ExperimentPackage> fetched = repo.value().fetch("exp-1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().event_count(), package.value().event_count());
  EXPECT_EQ(fetched.value().packet_count(), package.value().packet_count());

  // Analysis gives identical results on the reloaded package.
  Result<stats::Proportion> before =
      stats::responsiveness(package.value(), 5.0, 1);
  Result<stats::Proportion> after =
      stats::responsiveness(fetched.value(), 5.0, 1);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(before.value().estimate, after.value().estimate);
}

TEST(Integration, Level2DirectoryRoundTripMidExperiment) {
  TempDir dir;
  // Execute two of three runs, persist level-2 to disk, reload into a
  // fresh store and condition: only completed runs appear.
  core::scenario::TwoPartyOptions options;
  options.replications = 3;
  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  ASSERT_TRUE(topology.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 3;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(description.value(), *platform.value());
  ASSERT_TRUE(master.execute_run(master.plan().runs()[0]).ok());
  ASSERT_TRUE(master.execute_run(master.plan().runs()[1]).ok());

  ASSERT_TRUE(platform.value()
                  ->level2()
                  .write_to_directory(dir.path.string())
                  .ok());
  Result<storage::Level2Store> reloaded =
      storage::Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().completed_runs().size(), 2u);

  Result<storage::ExperimentPackage> package = storage::condition(
      reloaded.value(), description.value().to_xml_text(), {});
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package.value().run_ids(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_GT(package.value().event_count(), 0u);
}

TEST(Integration, ParallelCampaignsAreDeterministic) {
  // Independent experiments with distinct platform seeds executed across a
  // thread pool produce exactly the same packages as sequential execution
  // (replication parallelism per DESIGN.md §6).
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  constexpr int kCampaigns = 4;

  auto run_campaign = [&](std::uint64_t seed) -> std::string {
    Result<storage::ExperimentPackage> package =
        execute_options(options, seed);
    EXPECT_TRUE(package.ok());
    if (!package.ok()) return "error";
    Bytes serialized = package.value().database().serialize();
    // Fingerprint the whole package (size + full-content hash).
    std::string_view view(reinterpret_cast<const char*>(serialized.data()),
                          serialized.size());
    return std::to_string(serialized.size()) + ":" +
           std::to_string(fnv1a64(view));
  };

  std::vector<std::string> sequential;
  sequential.reserve(kCampaigns);
  for (int i = 0; i < kCampaigns; ++i) {
    sequential.push_back(run_campaign(static_cast<std::uint64_t>(i + 1)));
  }

  std::vector<std::string> parallel(kCampaigns);
  ThreadPool pool(4);
  pool.parallel_for(kCampaigns, [&](std::size_t i) {
    parallel[i] = run_campaign(static_cast<std::uint64_t>(i + 1));
  });

  EXPECT_EQ(sequential, parallel);
  // Different seeds genuinely differ.
  EXPECT_NE(sequential[0], sequential[1]);
}

TEST(Integration, ResponsivenessDegradesWithInjectedLoss) {
  // The headline case-study shape: responsiveness falls as the message-loss
  // factor rises (a small version of the [25] experiment).
  core::scenario::TwoPartyOptions options;
  options.replications = 12;
  options.deadline_s = 2.0;  // tight: one query round
  options.environment_count = 0;
  options.loss_levels = {0.0, 0.9};
  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  ASSERT_TRUE(topology.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 21;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(description.value(), *platform.value());
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  // Split runs by the loss level applied (treatment 0 = loss 0.0 first).
  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  ASSERT_TRUE(discoveries.ok());
  int hits_clean = 0;
  int hits_lossy = 0;
  for (const stats::RunDiscovery& run : discoveries.value()) {
    bool hit = false;
    for (const auto& [provider, latency] : run.latencies) {
      if (latency <= options.deadline_s) hit = true;
    }
    // Runs 1-12 are loss 0.0; runs 13-24 loss 0.9 (OFAT order).
    if (run.run_id <= 12) {
      hits_clean += hit ? 1 : 0;
    } else {
      hits_lossy += hit ? 1 : 0;
    }
  }
  EXPECT_EQ(hits_clean, 12);
  EXPECT_LT(hits_lossy, 12);
}

TEST(Integration, ConditioningBeatsRawLocalTimestamps) {
  // With +/-50 ms clock offsets, ordering events by RAW local time breaks
  // causality (responses before requests); the conditioned common time
  // base repairs it.  This is the point of §IV-B3.
  core::scenario::TwoPartyOptions options;
  options.replications = 4;
  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  ASSERT_TRUE(topology.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 17;
  config.max_clock_offset = sim::SimDuration::from_millis(200);
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(description.value(), *platform.value());
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok());

  // Conditioned timeline: no packet is received before it was sent, even
  // though senders and receivers stamp with different clocks.
  Result<std::size_t> conditioned =
      stats::propagation_violations(package.value());
  ASSERT_TRUE(conditioned.ok());
  EXPECT_EQ(conditioned.value(), 0u);

  // Counter-check: rebuild a package from the same level-2 data with the
  // offsets zeroed (i.e. raw local time as common time) and observe
  // violations appear.
  storage::Level2Store raw_view;  // copy with zeroed syncs
  for (const std::string& node :
       platform.value()->level2().node_names()) {
    raw_view.node(node) = *platform.value()->level2().find_node(node);
  }
  for (storage::SyncMeasurement sync : platform.value()->level2().syncs()) {
    sync.offset_ns = 0;
    raw_view.add_sync(sync);
  }
  for (std::int64_t run : platform.value()->level2().completed_runs()) {
    raw_view.mark_run_complete(run);
  }
  Result<storage::ExperimentPackage> raw_package = storage::condition(
      raw_view, description.value().to_xml_text(), {});
  ASSERT_TRUE(raw_package.ok());
  Result<std::size_t> raw_violations =
      stats::propagation_violations(raw_package.value());
  ASSERT_TRUE(raw_violations.ok());
  EXPECT_GT(raw_violations.value(), 0u);
}

TEST(Integration, RepositoryComparesArchitectures) {
  TempDir dir;
  Result<storage::Repository> repo =
      storage::Repository::open((dir.path / "repo").string());
  ASSERT_TRUE(repo.ok());

  for (const char* protocol : {"mdns", "slp"}) {
    core::scenario::TwoPartyOptions options;
    options.replications = 2;
    options.protocol = protocol;
    if (std::string(protocol) == "slp") {
      options.scm_count = 1;
      options.architecture = "three-party";
    }
    Result<storage::ExperimentPackage> package =
        execute_options(options, 31);
    ASSERT_TRUE(package.ok()) << package.error().to_string();
    ASSERT_TRUE(
        repo.value().store(std::string("arch-") + protocol, package.value())
            .ok());
  }

  // Cross-experiment query: both experiments discovered services.
  Result<std::vector<storage::Repository::CrossEvent>> adds =
      repo.value().events_of_type("sd_service_add");
  ASSERT_TRUE(adds.ok());
  std::set<std::string> experiments;
  for (const auto& cross : adds.value()) {
    experiments.insert(cross.experiment_id);
  }
  EXPECT_EQ(experiments.size(), 2u);
}

}  // namespace
}  // namespace excovery
