#include "core/master.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace excovery::core {

namespace {

constexpr const char* kComponent = "core.master";

/// Outcome slot for one sharded run, filled by whichever worker claims it.
struct RunSlot {
  bool executed = false;  ///< claimed and run (not skipped after a failure)
  std::optional<Error> error;
  storage::RunData data;
  int aborted = 0;
};

/// State shared between the sharding caller and its helper workers.  Held
/// by shared_ptr so a helper task that a saturated pool only gets around to
/// after the experiment finished finds `next` exhausted and exits without
/// touching anything else.
struct ShardContext {
  std::vector<const RunSpec*> todo;
  std::vector<RunSlot> slots;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t finished = 0;
  /// Workers that built an executor and have not yet retired.  wait_all
  /// blocks on them too, so per-worker epilogue work (metric-shard merges)
  /// is complete before the caller proceeds — pool-borrowed helpers are
  /// never joined, only waited for.
  std::size_t working = 0;

  void note_finished() {
    std::lock_guard lock(done_mutex);
    if (++finished == slots.size()) done_cv.notify_all();
  }
  void note_worker_started() {
    std::lock_guard lock(done_mutex);
    ++working;
  }
  void note_worker_retired() {
    std::lock_guard lock(done_mutex);
    if (--working == 0) done_cv.notify_all();
  }
  void wait_all() {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock,
                 [this] { return finished == slots.size() && working == 0; });
  }
};

}  // namespace

ExperiMaster::ExperiMaster(const ExperimentDescription& description,
                           SimPlatform& platform, MasterOptions options)
    : description_(description),
      platform_(platform),
      options_(std::move(options)) {
  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  // Plan generation fails only on malformed actor maps, which validate()
  // catches earlier; keep an empty plan on error and surface it in
  // execute().
  if (plan.ok()) {
    plan_ = std::make_unique<TreatmentPlan>(std::move(plan).value());
  }
  executor_ = std::make_unique<RunExecutor>(description_, platform_,
                                            executor_options());
#if EXCOVERY_OBS_ENABLED
  if (options_.obs != nullptr) {
    obs_shard_ =
        std::make_unique<obs::MetricsShard>(options_.obs->make_shard());
    executor_->attach_obs(options_.obs, obs_shard_.get());
  }
#endif
}

RunExecutorOptions ExperiMaster::executor_options() const {
  RunExecutorOptions options;
  options.max_attempts_per_run = options_.max_attempts_per_run;
  options.run_watchdog = options_.run_watchdog;
  options.settle = options_.settle;
  options.abort_hook = options_.abort_hook;
  options.flight_dir = options_.flight_dir;
  return options;
}

Result<storage::ExperimentPackage> ExperiMaster::execute() {
  if (!plan_) return err_validation("treatment plan generation failed");

  // experiment_init on every participant, once per experiment.  A resumed
  // experiment (completed runs already in the store) skips it: the nodes
  // were initialized by the interrupted execution and the recorded init
  // events are already in the loaded level-2 store.
  const bool resuming = !platform_.level2().completed_runs().empty();
  if (!experiment_initialized_) {
    if (!resuming) {
      for (const std::string& node : platform_.node_names()) {
        EXC_TRY(node_rpc(node, "experiment_init"));
      }
    }
    experiment_initialized_ = true;
  }

  // Topology before the experiment (§IV-B4: "before and after"), plus the
  // advanced recording (adjacency + link quality) the paper anticipates.
  // Replace-by-name keeps a resumed experiment's blob list identical to an
  // uninterrupted one.
  std::vector<std::string> all_nodes = platform_.node_names();
  platform_.level2()
      .node(kEnvironmentNode)
      .set_experiment_blob("topology_before",
                           platform_.measure_topology(all_nodes));
  platform_.level2()
      .node(kEnvironmentNode)
      .set_experiment_blob("topology_detail",
                           platform_.measure_topology_detailed());

  // Resume: skip runs already completed in the level-2 store (§VII:
  // "recovers from failures by resuming aborted runs").
  std::vector<const RunSpec*> todo =
      plan_->remaining(platform_.level2().completed_runs());
  std::size_t workers = options_.run_workers != 0
                            ? options_.run_workers
                            : std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency());
  workers = std::min(workers, todo.size());
  // Resume with a gap: a run with a smaller id than an already-completed one
  // must execute at its canonical epoch, but this platform's clock is
  // already past it (an interrupted sharded execution completed later runs
  // first).  A fresh replica starts at simulated time zero, so the sharded
  // path — which also splices the run back into run-id order — reproduces
  // the uninterrupted store exactly; the in-place sequential path cannot.
  std::int64_t max_completed = 0;
  for (std::int64_t run : platform_.level2().completed_runs()) {
    max_completed = std::max(max_completed, run);
  }
  const bool gap_resume =
      !todo.empty() && todo.front()->run_id < max_completed;
  progress_total_ = todo.size();
  progress_done_.store(0, std::memory_order_relaxed);
#if EXCOVERY_OBS_ENABLED
  obs::WallSpan runs_span;
  if (options_.obs != nullptr) {
    runs_span = obs::WallSpan(
        &options_.obs->trace(),
        strings::format("execute %zu run(s), %zu worker(s)", todo.size(),
                        std::max<std::size_t>(workers, 1)),
        "master");
  }
#endif
  if (workers <= 1 && !gap_resume) {
    EXC_TRY(run_all_sequential(todo));
  } else if (!todo.empty()) {
    EXC_TRY(run_all_sharded(todo, std::max<std::size_t>(workers, 1)));
  }
#if EXCOVERY_OBS_ENABLED
  runs_span = obs::WallSpan();  // close the span before conditioning
  if (options_.obs != nullptr && obs_shard_ != nullptr) {
    // Fold the sequential path's shard into the merged view; re-arm it so a
    // later execute() on the same master starts from zero again.
    options_.obs->merge_shard(*obs_shard_);
    *obs_shard_ = options_.obs->make_shard();
  }
#endif

  platform_.level2()
      .node(kEnvironmentNode)
      .set_experiment_blob("topology_after",
                           platform_.measure_topology(all_nodes));

  // Experiment-scope exit events must not attach to whichever run happened
  // to execute last on this platform instance (run 0 is never completed, so
  // they stay out of the conditioned package in every execution layout).
  platform_.recorder().begin_run(0);
  for (const std::string& node : platform_.node_names()) {
    EXC_TRY(node_rpc(node, "experiment_exit"));
  }
  experiment_initialized_ = false;

  // Collection & conditioning into the level-3 package.
  storage::ConditioningOptions conditioning;
  conditioning.experiment_name = description_.name;
  conditioning.comment = options_.comment;
#if EXCOVERY_OBS_ENABLED
  obs::WallSpan condition_span;
  if (options_.obs != nullptr) {
    obs::ObsContext* obs = options_.obs;
    condition_span = obs::WallSpan(&obs->trace(), "condition", "storage");
    obs->add(obs->ids().condition_shards,
             platform_.level2().node_names().size());
    conditioning.timing_hook = [obs](std::string_view phase,
                                     std::int64_t wall_ns) {
      obs->observe(obs->ids().condition_wall_ns,
                   static_cast<double>(wall_ns));
      obs->trace().instant(obs::Track::kWall, obs::current_thread_tid(),
                           "condition:" + std::string(phase), "storage",
                           obs->trace().wall_now_ns());
    };
  }
#endif
  return storage::condition(platform_.level2(), description_.to_xml_text(),
                            conditioning);
}

Status ExperiMaster::execute_run(const RunSpec& run, int attempt) {
  return executor_->execute_run(run, attempt);
}

Status ExperiMaster::execute_with_retries(RunExecutor& executor,
                                          SimPlatform& platform,
                                          const RunSpec& run, int& aborted) {
  Status status = err_aborted("not attempted");
  for (int attempt = 1; attempt <= options_.max_attempts_per_run; ++attempt) {
    status = executor.execute_run(run, attempt);
    if (options_.progress) {
      std::lock_guard lock(progress_mutex_);
      options_.progress(run, attempt, status.ok());
    }
    if (status.ok()) {
#if EXCOVERY_OBS_ENABLED
      if (options_.obs != nullptr) {
        std::size_t done =
            progress_done_.fetch_add(1, std::memory_order_relaxed) + 1;
        options_.obs->report_progress(done, progress_total_, run.run_id,
                                      attempt);
      }
#endif
      return {};
    }
    ++aborted;
#if EXCOVERY_OBS_ENABLED
    // Only attempts that actually get another try count as retries.
    if (options_.obs != nullptr &&
        attempt < options_.max_attempts_per_run) {
      options_.obs->add(options_.obs->ids().runs_retries, 1);
    }
#endif
    EXC_LOG_WARN(kComponent,
                 "run " << run.run_id << " attempt " << attempt
                        << " aborted: " << status.error().to_string());
    // Discard the aborted run's partial data before retrying.
    platform.level2().discard_run(run.run_id);
    platform.reset_run_state();
  }
  return std::move(status).context(
      strings::format("run %lld failed after %d attempts",
                      static_cast<long long>(run.run_id),
                      options_.max_attempts_per_run));
}

Status ExperiMaster::run_all_sequential(
    const std::vector<const RunSpec*>& todo) {
  for (const RunSpec* run : todo) {
    EXC_TRY(execute_with_retries(*executor_, platform_, *run,
                                 aborted_attempts_));
  }
  return {};
}

Status ExperiMaster::run_all_sharded(const std::vector<const RunSpec*>& todo,
                                     std::size_t workers) {
  auto ctx = std::make_shared<ShardContext>();
  ctx->todo = todo;
  ctx->slots.resize(todo.size());

  // Work claiming: each participating thread lazily builds its own platform
  // replica, then pulls run indexes off the shared counter until the plan
  // is exhausted.  A failure poisons the remaining (unclaimed) runs so the
  // experiment stops quickly; already-claimed runs still finish and are
  // merged, matching sequential resume semantics.
  auto work = [this, ctx] {
    std::unique_ptr<SimPlatform> replica;
    std::unique_ptr<RunExecutor> executor;
#if EXCOVERY_OBS_ENABLED
    // Each worker records into its own shard — no synchronisation on the
    // hot path — and folds it into the context when its claim loop ends.
    // Counter merges commute and histogram sums use exact (order-invariant)
    // summation, so the merged totals do not depend on which worker claimed
    // which run.
    std::unique_ptr<obs::MetricsShard> shard;
#endif
    for (;;) {
      std::size_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx->todo.size()) break;
      RunSlot& slot = ctx->slots[i];
      if (ctx->failed.load(std::memory_order_relaxed)) {
        ctx->note_finished();
        continue;
      }
      if (!executor) {
        Result<std::unique_ptr<SimPlatform>> r =
            platform_.replicate(description_);
        if (!r.ok()) {
          slot.error = std::move(r).error();
          ctx->failed.store(true, std::memory_order_relaxed);
          ctx->note_finished();
          continue;
        }
        replica = std::move(r).value();
        executor = std::make_unique<RunExecutor>(description_, *replica,
                                                 executor_options());
        ctx->note_worker_started();
#if EXCOVERY_OBS_ENABLED
        if (options_.obs != nullptr) {
          shard = std::make_unique<obs::MetricsShard>(
              options_.obs->make_shard());
          executor->attach_obs(options_.obs, shard.get());
        }
#endif
      }
      const RunSpec& run = *ctx->todo[i];
      slot.executed = true;
      Status status =
          execute_with_retries(*executor, *replica, run, slot.aborted);
      if (status.ok()) {
        slot.data = replica->level2().extract_run(run.run_id);
      } else {
        slot.error = std::move(status).error();
        ctx->failed.store(true, std::memory_order_relaxed);
      }
      ctx->note_finished();
    }
#if EXCOVERY_OBS_ENABLED
    if (shard != nullptr && options_.obs != nullptr) {
      options_.obs->merge_shard(*shard);
    }
#endif
    if (executor) ctx->note_worker_retired();
  };

  // The calling thread always participates; extra workers either ride the
  // shared pool (campaign nesting) or short-lived dedicated threads.  With
  // a saturated shared pool the helpers may never start — the caller then
  // simply executes every run itself.
  std::vector<std::thread> threads;
  for (std::size_t w = 1; w < workers; ++w) {
    if (options_.run_pool) {
      options_.run_pool->post(work);
    } else {
      threads.emplace_back(work);
    }
  }
  work();
  ctx->wait_all();
  for (std::thread& thread : threads) thread.join();

  // Deterministic merge: todo order is ascending run-id order, and
  // merge_run splices each run in where that order dictates, so the master
  // store is byte-identical to one filled by sequential execution.
  std::optional<Error> failure;
  for (std::size_t i = 0; i < ctx->slots.size(); ++i) {
    RunSlot& slot = ctx->slots[i];
    aborted_attempts_ += slot.aborted;
    if (slot.error) {
      if (!failure) failure = std::move(*slot.error);
      continue;
    }
    if (!slot.executed) continue;  // skipped after another run failed
    platform_.level2().merge_run(std::move(slot.data));
    platform_.level2().mark_run_complete(ctx->todo[i]->run_id);
  }
  if (failure) return std::move(*failure);
  return {};
}

Status ExperiMaster::node_rpc(const std::string& concrete_node,
                              const std::string& method) {
  rpc::RpcClient client = platform_.client(concrete_node);
  Result<Value> outcome =
      client.call(method, ValueArray{Value{ValueMap{}}});
  if (!outcome.ok()) return std::move(outcome).error();
  return {};
}

}  // namespace excovery::core
