// Discrete-event scheduler.
//
// The kernel of the simulated platform: a time-ordered queue of callbacks.
// Ties at equal timestamps break on insertion sequence number, so execution
// order is a pure function of the schedule calls — the whole simulation is
// deterministic and replayable (a platform property §IV-A depends on).
//
// Hot-path layout (see DESIGN.md "Kernel performance model"): callbacks
// live in a slab arena of recycled slots addressed by {slot, generation}
// handles (O(1) cancel, no hashing), the ready queue is a 4-ary min-heap
// over small POD entries, and callbacks are stored in an inline
// small-buffer type so the steady-state schedule→execute loop performs no
// heap allocation for typical lambdas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/obs_switch.hpp"
#include "sim/time.hpp"

namespace excovery::sim {

/// Move-only callable with inline small-buffer storage.  Callables up to
/// `kInlineSize` bytes (and nothrow-movable) are stored in place; larger
/// ones fall back to a single heap cell.  The buffer is sized so the
/// network data plane's per-hop continuations (which carry a whole Packet)
/// stay inline.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 128;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& fn) {  // NOLINT: implicit wrap, like std::function
    emplace(std::forward<F>(fn));
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `to` from `from`, destroying the source.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* from, void* to) noexcept {
          Fn* f = static_cast<Fn*>(from);
          ::new (to) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() noexcept {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* from, void* to) noexcept {
          std::memcpy(to, from, sizeof(Fn*));
        },
        [](void* p) noexcept { delete *static_cast<Fn**>(p); },
    };
    return &ops;
  }

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heap_ops<Fn>();
    }
  }

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Handle for cancelling a scheduled event.  Addresses a slot in the
/// scheduler's timer arena; the generation detects (and rejects) slot
/// reuse, so a stale handle can never cancel a newer timer.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const noexcept { return generation_ != 0; }

 private:
  friend class Scheduler;
  TimerHandle(std::uint32_t slot, std::uint32_t generation) noexcept
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;  ///< 0 = invalid (generations start at 1)
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` from now.  Negative delays clamp to now.
  TimerHandle schedule(SimDuration delay, Callback fn);
  /// Schedule at an absolute time (>= now; earlier clamps to now).
  TimerHandle schedule_at(SimTime when, Callback fn);
  /// Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(TimerHandle handle);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_count_; }
  bool idle() const noexcept { return pending() == 0; }

  /// Run a single event; returns false when the queue is empty.
  bool step();
  /// Run until the queue drains or `limit` events executed (0 = unlimited).
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = 0);
  /// Run events with timestamps <= deadline; clock ends at
  /// max(reached, deadline).  Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Total events executed since construction (for overhead metrics).
  std::uint64_t executed() const noexcept { return executed_; }

  /// Arena capacity (slots ever allocated); observability for tests.
  std::size_t arena_size() const noexcept { return slots_.size(); }

  /// Pending-event high-water mark since construction (0 when the build has
  /// observability hooks compiled out).
  std::size_t max_pending() const noexcept { return max_pending_; }
  /// Timers cancelled before firing (0 when hooks are compiled out).
  std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Ambient causal context: the lineage event id (sim/lineage.hpp) the
  /// currently-running activity descends from.  Captured into every timer
  /// at schedule time and restored around its dispatch, so causality
  /// propagates through arbitrary async chains without explicit plumbing.
  /// 0 = no context.  Compiled out (always 0) under -DEXCOVERY_OBS=OFF.
#if EXCOVERY_OBS_ENABLED
  std::uint64_t current_context() const noexcept { return current_ctx_; }
  void set_current_context(std::uint64_t ctx) noexcept { current_ctx_ = ctx; }
#else
  static constexpr std::uint64_t current_context() noexcept { return 0; }
  static constexpr void set_current_context(std::uint64_t) noexcept {}
#endif

 private:
  /// One timer cell in the slab arena.  Recycled through a free list; the
  /// generation is bumped on every release so stale handles and stale heap
  /// entries are detected with a single indexed load.
  struct Slot {
    std::uint32_t generation = 1;
    bool armed = false;
#if EXCOVERY_OBS_ENABLED
    std::uint64_t ctx = 0;  ///< ambient causal context captured at schedule
#endif
    Callback fn;
  };

  /// Heap entries are small PODs; the callback stays in the arena so heap
  /// sift operations move 24 bytes, never the callable.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    // Exact (when, seq) tie-break: identical to the seed kernel's ordering.
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  bool entry_live(const HeapEntry& entry) const noexcept {
    const Slot& slot = slots_[entry.slot];
    return slot.armed && slot.generation == entry.generation;
  }

  std::uint32_t acquire_slot();
  /// Disarm + free a slot: destroys its callback, bumps the generation and
  /// returns it to the free list.  Decrements the live count.
  void release_slot(std::uint32_t index);

  void heap_push(const HeapEntry& entry);
  /// Remove the root entry, restoring the heap property.
  void heap_pop_root();

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::size_t max_pending_ = 0;
  std::uint64_t cancelled_ = 0;
#if EXCOVERY_OBS_ENABLED
  std::uint64_t current_ctx_ = 0;
#endif
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap ordered by (when, seq)
};

}  // namespace excovery::sim
