// Self-contained cryptographic-strength content digest (SHA-256, FIPS
// 180-4), used for content addressing: experiment packages are pure
// functions of (canonical description, seed, protocol version), so a digest
// over those inputs names the package the way Nix names build outputs.  No
// external crypto dependency; the implementation is the textbook
// compression loop and is covered by the published test vectors in
// tests/canonical_hash_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace excovery {

class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  /// Stream raw bytes into the digest.
  Sha256& update(const void* data, std::size_t size);
  Sha256& update(std::string_view text);
  /// Fixed-width little-endian integers, for seeds / versions / counters.
  Sha256& update_u32(std::uint32_t v);
  Sha256& update_u64(std::uint64_t v);
  /// A double by its bit pattern (distinguishes -0.0 from 0.0 and every
  /// NaN payload — exactly the identity the byte-deterministic store uses).
  Sha256& update_f64(double v);
  /// Length-prefixed string, so concatenated fields cannot alias
  /// ("ab" + "c" vs "a" + "bc").
  Sha256& update_sized(std::string_view text);

  /// Finalise; the object must not be updated afterwards.
  Digest finish();

  /// Finalise and render as lower-case hex in one step.
  std::string finish_hex();

  /// One-shot convenience.
  static Digest digest(std::string_view text);

 private:
  /// Absorb `count` consecutive 64-byte blocks.  Dispatches to the x86
  /// SHA-NI compression when the CPU has it (detected once at startup),
  /// falling back to the portable scalar loop; both produce the same
  /// FIPS 180-4 digest bit for bit.
  void compress(const std::uint8_t* blocks, std::size_t count);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t length_ = 0;  ///< total bytes absorbed
  std::size_t buffered_ = 0;
};

/// Lower-case hex rendering ("e3b0c442..."), 64 characters.
std::string to_hex(const Sha256::Digest& digest);

}  // namespace excovery
