// Unit tests for descriptive statistics and the SD analysis functions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/packet.hpp"
#include "sd/message.hpp"
#include "stats/analysis.hpp"
#include "stats/metrics.hpp"

namespace excovery::stats {
namespace {

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, MeanStddevMinMax) {
  std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(stddev(values), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(min_of(values), 2.0);
  EXPECT_DOUBLE_EQ(max_of(values), 9.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Metrics, Percentiles) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  EXPECT_NEAR(percentile(values, 50), 50.5, 1e-9);
  EXPECT_NEAR(percentile(values, 0), 1.0, 1e-9);
  EXPECT_NEAR(percentile(values, 100), 100.0, 1e-9);
  EXPECT_NEAR(percentile(values, 95), 95.05, 0.01);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Metrics, WilsonInterval) {
  Proportion p = wilson(90, 100);
  EXPECT_DOUBLE_EQ(p.estimate, 0.9);
  EXPECT_LT(p.lower, 0.9);
  EXPECT_GT(p.upper, 0.9);
  EXPECT_NEAR(p.lower, 0.825, 0.01);
  EXPECT_NEAR(p.upper, 0.944, 0.01);

  // Degenerate cases stay within [0, 1].
  Proportion all = wilson(50, 50);
  EXPECT_DOUBLE_EQ(all.estimate, 1.0);
  EXPECT_LE(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);  // still uncertain
  Proportion none = wilson(0, 50);
  EXPECT_GE(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
  Proportion empty = wilson(0, 0);
  EXPECT_EQ(empty.trials, 0u);
  EXPECT_DOUBLE_EQ(empty.estimate, 0.0);
}

TEST(Metrics, WilsonNarrowsWithSamples) {
  Proportion small = wilson(9, 10);
  Proportion large = wilson(900, 1000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(Metrics, HistogramBinning) {
  Histogram histogram(0.0, 10.0, 10);
  for (double v : {0.5, 1.5, 1.6, 9.9, -1.0, 10.0, 25.0}) histogram.add(v);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_EQ(histogram.bin_count(0), 1u);
  EXPECT_EQ(histogram.bin_count(1), 2u);
  EXPECT_EQ(histogram.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(histogram.bin_lower(1), 1.0);
  std::string text = histogram.format();
  EXPECT_NE(text.find("underflow: 1"), std::string::npos);
  EXPECT_NE(text.find("overflow:  2"), std::string::npos);
}

TEST(Metrics, PercentileEdgeCases) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN samples are dropped before ranking, not sorted somewhere arbitrary.
  EXPECT_DOUBLE_EQ(percentile({nan, 1.0, nan, 3.0}, 50), 2.0);
  // All-NaN behaves like empty input.
  EXPECT_DOUBLE_EQ(percentile({nan, nan}, 50), 0.0);
  // A NaN rank is propagated, not silently clamped into the range.
  EXPECT_TRUE(std::isnan(percentile({1.0, 2.0}, nan)));
  // Out-of-range p clamps to the extremes.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 400), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 100), 3.0);
}

TEST(Metrics, HistogramEdgeCases) {
  // Reversed bounds describe the same range and are normalised.
  Histogram reversed(10.0, 0.0, 10);
  reversed.add(9.5);
  EXPECT_EQ(reversed.bin_count(9), 1u);
  EXPECT_EQ(reversed.underflow(), 0u);
  EXPECT_EQ(reversed.overflow(), 0u);

  // Width-zero range: the single representable value lands in bin 0.
  Histogram degenerate(5.0, 5.0, 4);
  degenerate.add(5.0);
  degenerate.add(6.0);
  degenerate.add(4.0);
  EXPECT_EQ(degenerate.bin_count(0), 1u);
  EXPECT_EQ(degenerate.overflow(), 1u);
  EXPECT_EQ(degenerate.underflow(), 1u);
  EXPECT_EQ(degenerate.count(), 3u);

  // NaN samples go to a dedicated bucket (they belong to no bin) and are
  // reported by format().
  Histogram with_nan(0.0, 1.0, 2);
  with_nan.add(std::numeric_limits<double>::quiet_NaN());
  with_nan.add(0.5);
  EXPECT_EQ(with_nan.count(), 2u);
  EXPECT_EQ(with_nan.nan_count(), 1u);
  EXPECT_EQ(with_nan.bin_count(1), 1u);
  EXPECT_NE(with_nan.format().find("nan:       1"), std::string::npos);

  // Zero requested bins still yields a usable single-bin histogram.
  Histogram zero_bins(0.0, 1.0, 0);
  EXPECT_EQ(zero_bins.bins(), 1u);
  zero_bins.add(0.5);
  EXPECT_EQ(zero_bins.bin_count(0), 1u);
}

// ---- analysis over synthetic packages -------------------------------------------

storage::ExperimentPackage synthetic_package() {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "synthetic", "");
  // Run 1: SU0 searches at t=1, finds SM0 at 1.4 and SM1 at 3.0.
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});
  (void)package.add_event({1, "SU0", 1.0, "sd_start_search", "_t"});
  (void)package.add_event({1, "SU0", 1.4, "sd_service_add", "SM0"});
  (void)package.add_event({1, "SU0", 3.0, "sd_service_add", "SM1"});
  // Run 2: finds only SM0 at 2.5, then times out.
  (void)package.add_run_info({2, "SU0", 10.0, 0.0});
  (void)package.add_event({2, "SU0", 11.0, "sd_start_search", "_t"});
  (void)package.add_event({2, "SU0", 13.5, "sd_service_add", "SM0"});
  (void)package.add_event({2, "SU0", 41.0, "wait_timeout", "sd_service_add"});
  // Run 3: finds nothing.
  (void)package.add_run_info({3, "SU0", 50.0, 0.0});
  (void)package.add_event({3, "SU0", 51.0, "sd_start_search", "_t"});
  (void)package.add_event({3, "SU0", 81.0, "wait_timeout", "sd_service_add"});
  return package;
}

TEST(Analysis, DiscoveriesExtractLatenciesPerRun) {
  storage::ExperimentPackage package = synthetic_package();
  Result<std::vector<RunDiscovery>> runs = discoveries(package);
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs.value().size(), 3u);

  const RunDiscovery& first = runs.value()[0];
  EXPECT_EQ(first.run_id, 1);
  EXPECT_EQ(first.searcher, "SU0");
  ASSERT_EQ(first.latencies.size(), 2u);
  EXPECT_NEAR(first.latencies.at("SM0"), 0.4, 1e-9);
  EXPECT_NEAR(first.latencies.at("SM1"), 2.0, 1e-9);
  EXPECT_FALSE(first.timed_out);

  const RunDiscovery& second = runs.value()[1];
  EXPECT_NEAR(second.latencies.at("SM0"), 2.5, 1e-9);
  EXPECT_TRUE(second.timed_out);

  EXPECT_TRUE(runs.value()[2].latencies.empty());
}

TEST(Analysis, ResponsivenessCountsDeadlineHits) {
  storage::ExperimentPackage package = synthetic_package();
  // Deadline 3 s, 1 provider required: runs 1 and 2 succeed.
  Result<Proportion> r1 = responsiveness(package, 3.0, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().successes, 2u);
  EXPECT_EQ(r1.value().trials, 3u);
  // 2 providers within 3 s: only run 1.
  Result<Proportion> r2 = responsiveness(package, 3.0, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().successes, 1u);
  // Tight deadline 0.3 s: nobody (fastest discovery took 0.4 s).
  Result<Proportion> r3 = responsiveness(package, 0.3, 1);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value().successes, 0u);
}

TEST(Analysis, ResponsivenessMonotoneInDeadline) {
  storage::ExperimentPackage package = synthetic_package();
  double previous = 0.0;
  for (double deadline : {0.1, 0.5, 1.0, 2.0, 2.6, 3.0, 10.0}) {
    Result<Proportion> r = responsiveness(package, deadline, 1);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.value().estimate, previous);
    previous = r.value().estimate;
  }
}

TEST(Analysis, LatencyCollections) {
  storage::ExperimentPackage package = synthetic_package();
  Result<std::vector<double>> all = discovery_latencies(package);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 3u);
  Result<std::vector<double>> first = first_latencies(package);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().size(), 2u);  // runs with at least one discovery
  EXPECT_NEAR(min_of(first.value()), 0.4, 1e-9);
}

TEST(Analysis, ServiceAddBeforeSearchIgnored) {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "x", "");
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});
  // Add arrives before any search started (cache artifact): no crash, no
  // discovery attributed.
  (void)package.add_event({1, "SU0", 0.5, "sd_service_add", "SM0"});
  (void)package.add_event({1, "SU0", 1.0, "sd_start_search", "_t"});
  Result<std::vector<RunDiscovery>> runs = discoveries(package);
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs.value().size(), 1u);
  EXPECT_TRUE(runs.value()[0].latencies.empty());
}

// ---- packet-level analysis ----------------------------------------------------------

storage::PacketRow make_capture(std::int64_t run, const std::string& node,
                                double time, net::Direction direction,
                                const sd::SdMessage& message,
                                const std::string& src_node) {
  net::CapturedPacket captured;
  captured.direction = direction;
  captured.packet.src = net::Address(10, 0, 0, 1);
  captured.packet.dst = net::Address::sd_multicast();
  captured.packet.src_port = net::kSdPort;
  captured.packet.dst_port = net::kSdPort;
  captured.packet.payload = sd::encode(message);
  captured.packet.route = {0};
  storage::PacketRow row;
  row.run_id = run;
  row.node_id = node;
  row.common_time = time;
  row.src_node_id = src_node;
  row.data = net::capture_to_wire(captured);
  return row;
}

TEST(Analysis, PairRequestsMatchesTxnIds) {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "x", "");
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});

  sd::SdMessage query;
  query.kind = sd::MessageKind::kQuery;
  query.txn_id = 42;
  query.service_type = "_t";
  query.sender_name = "SU0";
  sd::SdMessage response;
  response.kind = sd::MessageKind::kResponse;
  response.txn_id = 42;
  response.service_type = "_t";
  response.sender_name = "SM0";
  sd::SdMessage unsolicited = response;
  unsolicited.txn_id = 999;  // no matching query

  (void)package.add_packet(make_capture(
      1, "SU0", 1.0, net::Direction::kTransmit, query, "SU0"));
  (void)package.add_packet(make_capture(
      1, "SU0", 1.2, net::Direction::kReceive, response, "SM0"));
  (void)package.add_packet(make_capture(
      1, "SU0", 1.3, net::Direction::kReceive, unsolicited, "SM0"));

  Result<std::vector<RequestResponsePair>> pairs = pair_requests(package);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_EQ(pairs.value()[0].txn_id, 42u);
  EXPECT_EQ(pairs.value()[0].requester, "SU0");
  EXPECT_EQ(pairs.value()[0].responder, "SM0");
  EXPECT_NEAR(pairs.value()[0].rtt(), 0.2, 1e-9);
}

TEST(Analysis, FirstResponseWinsForDuplicates) {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "x", "");
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});
  sd::SdMessage query;
  query.kind = sd::MessageKind::kQuery;
  query.txn_id = 7;
  query.sender_name = "SU0";
  sd::SdMessage response = query;
  response.kind = sd::MessageKind::kResponse;
  response.sender_name = "SM0";
  (void)package.add_packet(make_capture(
      1, "SU0", 1.0, net::Direction::kTransmit, query, "SU0"));
  (void)package.add_packet(make_capture(
      1, "SU0", 1.1, net::Direction::kReceive, response, "SM0"));
  (void)package.add_packet(make_capture(
      1, "SU0", 1.5, net::Direction::kReceive, response, "SM0"));
  Result<std::vector<RequestResponsePair>> pairs = pair_requests(package);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_NEAR(pairs.value()[0].rtt(), 0.1, 1e-9);
}

TEST(Analysis, CausalViolationsDetected) {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "x", "");
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});
  sd::SdMessage query;
  query.kind = sd::MessageKind::kQuery;
  query.txn_id = 9;
  query.sender_name = "SU0";
  sd::SdMessage response = query;
  response.kind = sd::MessageKind::kResponse;
  response.sender_name = "SM0";
  // Response "arrives" before the request was sent: a conditioning bug or
  // an uncorrected clock offset.
  (void)package.add_packet(make_capture(
      1, "SU0", 2.0, net::Direction::kTransmit, query, "SU0"));
  (void)package.add_packet(make_capture(
      1, "SU0", 1.5, net::Direction::kReceive, response, "SM0"));
  // Pairing is order-independent, so the skew is visible: one pair with a
  // negative RTT, i.e. one causal violation.
  Result<std::vector<RequestResponsePair>> pairs = pair_requests(package);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs.value().size(), 1u);
  EXPECT_LT(pairs.value()[0].rtt(), 0.0);
  Result<std::size_t> violations = causal_violations(package);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations.value(), 1u);
}

TEST(Analysis, PacketStatsClassifyTraffic) {
  storage::ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", "x", "");
  (void)package.add_run_info({1, "SU0", 0.0, 0.0});
  sd::SdMessage query;
  query.kind = sd::MessageKind::kQuery;
  query.sender_name = "SU0";
  (void)package.add_packet(make_capture(
      1, "SU0", 1.0, net::Direction::kTransmit, query, "SU0"));
  // A non-SD packet.
  net::CapturedPacket raw;
  raw.direction = net::Direction::kReceive;
  raw.packet.payload = {0x01, 0x02};
  storage::PacketRow other;
  other.run_id = 1;
  other.node_id = "SU0";
  other.common_time = 2.0;
  other.src_node_id = "ENV0";
  other.data = net::capture_to_wire(raw);
  (void)package.add_packet(std::move(other));

  Result<std::vector<PacketStats>> stats = packet_stats(package);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().size(), 1u);
  EXPECT_EQ(stats.value()[0].captured, 2u);
  EXPECT_EQ(stats.value()[0].transmitted, 1u);
  EXPECT_EQ(stats.value()[0].received, 1u);
  EXPECT_EQ(stats.value()[0].sd_messages, 1u);
  EXPECT_GT(stats.value()[0].bytes, 0.0);
}

}  // namespace
}  // namespace excovery::stats
