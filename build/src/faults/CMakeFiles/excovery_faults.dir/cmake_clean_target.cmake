file(REMOVE_RECURSE
  "libexcovery_faults.a"
)
