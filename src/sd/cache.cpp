#include "sd/cache.hpp"

namespace excovery::sd {

void ServiceCache::store(const ServiceRecord& record, std::uint64_t lineage) {
  const std::string& name = record.instance.instance_name;
  auto it = entries_.find(name);

  if (record.ttl_seconds == 0) {
    // Goodbye: withdraw if present.
    if (it != entries_.end()) {
      ServiceInstance instance = it->second.record.instance;
      scheduler_.cancel(it->second.expiry_timer);
      entries_.erase(it);
      notify(CacheChange::kRemoved, instance);
    }
    return;
  }

  sim::SimTime expires =
      scheduler_.now() + sim::SimDuration::from_seconds(
                             static_cast<double>(record.ttl_seconds));
  if (it == entries_.end()) {
    Entry entry;
    entry.record = record;
    entry.expires = expires;
    entry.lineage = lineage;
    auto [inserted, ok] = entries_.emplace(name, std::move(entry));
    (void)ok;
    schedule_expiry(name, inserted->second);
    notify(CacheChange::kAdded, record.instance);
    return;
  }

  bool is_update = record.instance.version > it->second.record.instance.version;
  scheduler_.cancel(it->second.expiry_timer);
  it->second.record = record;
  it->second.expires = expires;
  if (lineage != 0) it->second.lineage = lineage;
  schedule_expiry(name, it->second);
  if (is_update) notify(CacheChange::kUpdated, record.instance);
  // Same-version refresh: TTL extended silently (cache maintenance).
}

void ServiceCache::schedule_expiry(const std::string& name, Entry& entry) {
  sim::SimTime deadline = entry.expires;
  entry.expiry_timer = scheduler_.schedule_at(deadline, [this, name, deadline] {
    auto it = entries_.find(name);
    if (it == entries_.end()) return;
    // A refresh may have moved the deadline; only expire if still due.
    if (it->second.expires > deadline) return;
    ServiceInstance instance = it->second.record.instance;
    entries_.erase(it);
    notify(CacheChange::kExpired, instance);
  });
}

std::vector<ServiceInstance> ServiceCache::instances(
    const ServiceType& type) const {
  std::vector<ServiceInstance> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.record.instance.type == type) {
      out.push_back(entry.record.instance);
    }
  }
  return out;
}

std::vector<ServiceInstance> ServiceCache::all_instances() const {
  std::vector<ServiceInstance> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(entry.record.instance);
  }
  return out;
}

bool ServiceCache::contains(const std::string& instance_name) const {
  return entries_.find(instance_name) != entries_.end();
}

std::uint64_t ServiceCache::lineage(const std::string& instance_name) const {
  auto it = entries_.find(instance_name);
  return it == entries_.end() ? 0 : it->second.lineage;
}

std::uint32_t ServiceCache::remaining_ttl(
    const std::string& instance_name) const {
  auto it = entries_.find(instance_name);
  if (it == entries_.end()) return 0;
  sim::SimDuration left = it->second.expires - scheduler_.now();
  if (left.nanos() <= 0) return 0;
  return static_cast<std::uint32_t>(left.seconds());
}

std::uint32_t ServiceCache::original_ttl(
    const std::string& instance_name) const {
  auto it = entries_.find(instance_name);
  if (it == entries_.end()) return 0;
  return it->second.record.ttl_seconds;
}

void ServiceCache::clear() {
  for (auto& [name, entry] : entries_) {
    scheduler_.cancel(entry.expiry_timer);
  }
  entries_.clear();
}

}  // namespace excovery::sd
