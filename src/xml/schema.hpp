// Lightweight XML schema validation.
//
// The paper ships "an XML schema description ... with the framework code"
// (§IV-C) used for automatic checking of experiment descriptions.  We model
// the useful subset: per-element rules with required/optional attributes,
// allowed children with occurrence bounds, text-content policy, and optional
// enumerated attribute values.  Rules compose into a Schema keyed by element
// name (within their parent context).
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "xml/dom.hpp"

namespace excovery::xml {

/// Occurrence bounds for a child element.
struct Occurs {
  std::size_t min = 0;
  std::size_t max = std::numeric_limits<std::size_t>::max();

  static Occurs exactly(std::size_t n) { return {n, n}; }
  static Occurs optional() { return {0, 1}; }
  static Occurs required() { return {1, 1}; }
  static Occurs at_least(std::size_t n) {
    return {n, std::numeric_limits<std::size_t>::max()};
  }
  static Occurs any() { return {}; }
};

/// Attribute rule: required flag plus an optional value enumeration.
struct AttrRule {
  bool required = false;
  std::vector<std::string> allowed_values;  // empty = any value
};

/// Rule for one element type.  Maps use transparent comparators so the
/// validator can look up the DOM's string_view names without allocating.
struct ElementRule {
  std::map<std::string, AttrRule, std::less<>> attributes;
  std::map<std::string, Occurs, std::less<>> children;
  bool allow_other_children = false;  ///< tolerate unknown child names
  bool allow_other_attrs = false;     ///< tolerate unknown attribute names
  bool allow_text = true;             ///< character data permitted

  ElementRule& attr(std::string name, bool required = false,
                    std::vector<std::string> allowed = {}) {
    attributes[std::move(name)] = AttrRule{required, std::move(allowed)};
    return *this;
  }
  ElementRule& child(std::string name, Occurs occurs = Occurs::any()) {
    children[std::move(name)] = occurs;
    return *this;
  }
  ElementRule& open_children() {
    allow_other_children = true;
    return *this;
  }
  ElementRule& open_attrs() {
    allow_other_attrs = true;
    return *this;
  }
  ElementRule& no_text() {
    allow_text = false;
    return *this;
  }
};

/// A schema: rules per element name.  Elements without a rule are accepted
/// as-is (open content model) unless `strict` is set at validation time.
class Schema {
 public:
  ElementRule& element(std::string name) { return rules_[std::move(name)]; }

  const ElementRule* find(std::string_view name) const {
    auto it = rules_.find(name);
    return it == rules_.end() ? nullptr : &it->second;
  }

  /// Validate a subtree.  Collects all violations rather than stopping at
  /// the first; the returned error message lists every problem found.
  Status validate(const Element& root, bool strict = false) const;

 private:
  void validate_element(const Element& element, bool strict,
                        const std::string& path,
                        std::vector<std::string>& problems) const;

  std::map<std::string, ElementRule, std::less<>> rules_;
};

}  // namespace excovery::xml
