file(REMOVE_RECURSE
  "CMakeFiles/excovery_net.dir/address.cpp.o"
  "CMakeFiles/excovery_net.dir/address.cpp.o.d"
  "CMakeFiles/excovery_net.dir/network.cpp.o"
  "CMakeFiles/excovery_net.dir/network.cpp.o.d"
  "CMakeFiles/excovery_net.dir/packet.cpp.o"
  "CMakeFiles/excovery_net.dir/packet.cpp.o.d"
  "CMakeFiles/excovery_net.dir/routing.cpp.o"
  "CMakeFiles/excovery_net.dir/routing.cpp.o.d"
  "CMakeFiles/excovery_net.dir/topology.cpp.o"
  "CMakeFiles/excovery_net.dir/topology.cpp.o.d"
  "libexcovery_net.a"
  "libexcovery_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
