#include "core/canonical.hpp"

#include "common/hash.hpp"
#include "storage/package.hpp"
#include "xml/writer.hpp"

namespace excovery::core {

namespace {

/// Streams serialised canonical bytes straight into an incremental
/// SHA-256, so digesting never materialises the canonical string.
class HashSink final : public xml::Sink {
 public:
  explicit HashSink(Sha256& hash) noexcept : hash_(hash) {}
  void write(const char* data, std::size_t size) override {
    hash_.update(data, size);
  }

 private:
  Sha256& hash_;
};

}  // namespace

std::string canonical_description_text(const ExperimentDescription& d) {
  xml::Document doc = d.to_xml();
  return xml::write_canonical(doc.root());
}

std::string campaign_digest(const ExperimentDescription& description,
                            const CampaignScope& scope,
                            std::uint32_t version) {
  Sha256 hash;
  hash.update_sized("excovery-campaign");
  hash.update_u32(version);
  // The package file format is part of the contract: a cache entry written
  // by a different format version would not be byte-identical to a fresh
  // simulation, so the EEVersion string is folded into the address.
  hash.update_sized(storage::kEeVersion);

  // Stream the canonical description text: a counting pass supplies the
  // length prefix (identical bytes to update_sized), then the canonical
  // writer feeds SHA-256 directly — zero intermediate string.
  xml::Document doc = description.to_xml();
  hash.update_u64(xml::canonical_size(doc.root()));
  HashSink sink(hash);
  xml::write_canonical(doc.root(), sink);
  hash.update_u64(description.seed);

  hash.update_u64(scope.platform_seed);
  hash.update_u32(static_cast<std::uint32_t>(scope.topology.kind));
  hash.update_u64(
      static_cast<std::uint64_t>(scope.topology.link.base_delay.nanos()));
  hash.update_f64(scope.topology.link.loss);
  hash.update_f64(scope.topology.link.jitter_frac);
  hash.update_f64(scope.topology.link.bandwidth_bps);
  hash.update_u32(static_cast<std::uint32_t>(scope.topology.chain_spacing));
  hash.update_f64(scope.topology.radius);
  hash.update_u64(scope.topology.seed);
  hash.update_u32(static_cast<std::uint32_t>(scope.max_attempts_per_run));
  hash.update_u64(static_cast<std::uint64_t>(scope.run_watchdog.nanos()));
  hash.update_u64(static_cast<std::uint64_t>(scope.settle.nanos()));

  return hash.finish_hex();
}

}  // namespace excovery::core
