// Fig. 3 — "Overview of ExCovery concepts and experiment workflow":
// preparation (design + platform setup) -> execution (master runs the
// plan, nodes record) -> collection & conditioning -> storage.
//
// Regenerated from running code: every workflow stage executed in order
// with wall-clock timings and the artifact each stage produces.
#include <chrono>

#include "bench_common.hpp"
#include "storage/conditioning.hpp"
#include "storage/repository.hpp"

using namespace excovery;

namespace {
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

int main() {
  bench::banner("bench_fig03_workflow",
                "Fig. 3: ExCovery concepts and experiment workflow");

  // Stage 1: experiment design -> abstract description (XML).
  auto t0 = std::chrono::steady_clock::now();
  core::scenario::TwoPartyOptions options;
  options.replications = 10;
  options.pairs_levels = {2};
  options.bw_levels = {50};
  core::ExperimentDescription description =
      bench::must(core::scenario::two_party_sd(options), "description");
  std::string xml_text = description.to_xml_text();
  std::printf("\n[1] preparation: experiment description   %8.2f ms  "
              "(%zu bytes of XML, %zu factors, %zu processes)\n",
              ms_since(t0), xml_text.size(), description.factors.size(),
              description.actor_processes.size() +
                  description.env_processes.size());

  // Stage 2: platform setup (node mapping, clocks, RPC endpoints).
  t0 = std::chrono::steady_clock::now();
  net::Topology topology = bench::must(
      core::scenario::topology_for(description, {}), "topology");
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 5;
  std::unique_ptr<core::SimPlatform> platform = bench::must(
      core::SimPlatform::create(description, std::move(config)), "platform");
  std::printf("[2] preparation: platform setup            %8.2f ms  "
              "(%zu nodes, %zu RPC endpoints)\n",
              ms_since(t0), platform->node_names().size(),
              platform->transport().endpoint_count());

  // Stage 3: execution (master drives runs; nodes monitor and record).
  t0 = std::chrono::steady_clock::now();
  core::ExperiMaster master(description, *platform);
  storage::ExperimentPackage package =
      bench::must(master.execute(), "execution");
  std::printf("[3] execution: %3zu runs                    %8.2f ms  "
              "(%llu events recorded, %llu sim events)\n",
              master.plan().run_count(), ms_since(t0),
              static_cast<unsigned long long>(
                  platform->recorder().recorded()),
              static_cast<unsigned long long>(
                  platform->scheduler().executed()));

  // Stage 4: collection & conditioning happened inside execute(); redo the
  // conditioning step standalone for its timing.
  t0 = std::chrono::steady_clock::now();
  storage::ExperimentPackage reconditioned = bench::must(
      storage::condition(platform->level2(), xml_text, {}), "conditioning");
  std::printf("[4] collection & conditioning              %8.2f ms  "
              "(%zu events, %zu packets on the common time base)\n",
              ms_since(t0), reconditioned.event_count(),
              reconditioned.packet_count());

  // Stage 5: storage into the single results database.
  t0 = std::chrono::steady_clock::now();
  std::string path = "/tmp/excovery-fig03.excovery";
  Status saved = package.save(path);
  std::printf("[5] storage: results database              %8.2f ms  "
              "(%s, single file: %s)\n",
              ms_since(t0), saved.ok() ? "ok" : "FAILED", path.c_str());
  std::remove(path.c_str());

  std::printf("\nworkflow complete: description -> platform -> execution -> "
              "conditioning -> database.\n");
  return 0;
}
