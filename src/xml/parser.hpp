// Recursive-descent XML parser producing the DOM of dom.hpp.
//
// Supported: elements, attributes (single or double quoted), character data
// with the five predefined entities plus decimal/hex character references,
// CDATA sections, comments (skipped), processing instructions and XML
// declarations (skipped).  Errors carry line/column positions.
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "xml/dom.hpp"

namespace excovery::xml {

/// Parse a complete document; exactly one root element is required.
Result<Document> parse(std::string_view input);

/// Parse and return the root element directly (common case).
Result<ElementPtr> parse_element(std::string_view input);

/// Escape character data for inclusion in XML text ("&", "<", ">").
std::string escape_text(std::string_view text);

/// Escape an attribute value (also quotes).
std::string escape_attr(std::string_view text);

}  // namespace excovery::xml
