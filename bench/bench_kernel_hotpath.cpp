// Kernel hot-path microbenchmarks (google-benchmark).
//
// Covers the three paths every experiment run hammers millions of times:
// scheduler schedule/cancel/run churn, unicast hop chains, multicast flood
// fan-out, and event-bus publish.  The EE's own overhead must stay
// negligible against measured SD behaviour (§VI ablation), so this binary
// is the perf trajectory tracker for the kernel: it writes machine-readable
// results to BENCH_kernel.json (override with --benchmark_out=...).
//
// Every benchmark also reports `allocs_per_op`: heap allocations per
// outer iteration, counted by a global operator-new override.  The
// scheduler churn loop must report 0 steady-state allocations for
// SBO-sized callbacks.
#include <benchmark/benchmark.h>

#include <atomic>

// The replacement operator new/delete below intentionally pair ::new with
// std::malloc/std::free; GCC's heuristic cannot see that they match.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "net/link_set.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/event_bus.hpp"
#include "sim/scheduler.hpp"

namespace {

// ---- allocation counting ---------------------------------------------------

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace excovery {
namespace {

using net::Address;
using net::NodeId;
using net::Packet;
using sim::SimDuration;
using sim::SimTime;

class AllocCounter {
 public:
  AllocCounter() : start_(g_allocs.load(std::memory_order_relaxed)) {}
  std::uint64_t delta() const {
    return g_allocs.load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

void report_allocs(benchmark::State& state, const AllocCounter& counter) {
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(counter.delta()) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kAvgThreads);
}

// ---- scheduler --------------------------------------------------------------

/// Steady-state schedule -> execute churn: per outer iteration, schedule a
/// batch of SBO-sized callbacks at staggered delays and drain the queue.
/// This is the loop `run_campaign` spends its life in.
void BM_SchedulerChurn(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  std::uint64_t sink = 0;
  // Warm up internal pools so the measurement sees steady state.
  for (std::size_t i = 0; i < batch; ++i) {
    scheduler.schedule(SimDuration(static_cast<std::int64_t>(i)),
                       [&sink, i] { sink += i; });
  }
  scheduler.run();
  AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      scheduler.schedule(SimDuration(static_cast<std::int64_t>(i % 64)),
                         [&sink, i] { sink += i; });
    }
    scheduler.run();
  }
  benchmark::DoNotOptimize(sink);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SchedulerChurn)->Arg(64)->Arg(1024);

/// schedule + cancel churn: timers that never fire (retries, timeouts).
void BM_SchedulerScheduleCancel(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  std::uint64_t sink = 0;
  std::vector<sim::TimerHandle> handles(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    handles[i] = scheduler.schedule(SimDuration::from_millis(10),
                                    [&sink] { ++sink; });
  }
  for (auto& h : handles) scheduler.cancel(h);
  scheduler.run();
  AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      handles[i] = scheduler.schedule(SimDuration::from_millis(10),
                                      [&sink] { ++sink; });
    }
    for (auto& h : handles) scheduler.cancel(h);
    scheduler.run();
  }
  benchmark::DoNotOptimize(sink);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SchedulerScheduleCancel)->Arg(1024);

/// Interleaved schedule/cancel/reschedule with events in flight, as the SD
/// stacks do with retry timers.
void BM_SchedulerRescheduleMix(benchmark::State& state) {
  sim::Scheduler scheduler;
  std::uint64_t sink = 0;
  constexpr std::size_t kTimers = 256;
  std::vector<sim::TimerHandle> handles(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    handles[i] = scheduler.schedule(SimDuration(static_cast<std::int64_t>(i)),
                                    [&sink] { ++sink; });
  }
  scheduler.run();
  AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      handles[i] = scheduler.schedule(
          SimDuration(static_cast<std::int64_t>(i % 16)), [&sink] { ++sink; });
    }
    for (std::size_t i = 0; i < kTimers; i += 2) {
      scheduler.cancel(handles[i]);
      handles[i] = scheduler.schedule(
          SimDuration(static_cast<std::int64_t>(i % 8)), [&sink] { ++sink; });
    }
    scheduler.run();
  }
  benchmark::DoNotOptimize(sink);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTimers + kTimers / 2));
}
BENCHMARK(BM_SchedulerRescheduleMix);

// ---- network data plane -----------------------------------------------------

net::LinkModel lossless_link() {
  net::LinkModel model = net::LinkModel::ideal();
  model.loss = 0.0;
  model.jitter_frac = 0.0;
  return model;
}

/// Unicast over a chain: every packet crosses `length - 1` hops; each hop
/// moves the packet through filters, capture, and the scheduler.
void BM_UnicastChain(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::Network network(scheduler, net::Topology::chain(length,
                                                       lossless_link()),
                       /*seed=*/7);
  network.set_capture_enabled(false);
  const NodeId last = static_cast<NodeId>(length - 1);
  std::uint64_t delivered = 0;
  network.bind(last, 4000,
               [&delivered](NodeId, const Packet&) { ++delivered; });
  auto send_one = [&] {
    Packet packet;
    // Node addresses are for_node(id + 1) — .0 is reserved — so resolve the
    // destination through the topology; for_node(last) would address the
    // previous node (which has no handler) and the packet would silently
    // stop one hop short.
    packet.dst = network.topology().node(last).address;
    packet.dst_port = 4000;
    packet.payload.assign(256, 0x5A);
    (void)network.send(0, std::move(packet));
  };
  send_one();
  scheduler.run();
  AllocCounter allocs;
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) send_one();
    scheduler.run();
  }
  benchmark::DoNotOptimize(delivered);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          static_cast<std::int64_t>(length - 1));
}
BENCHMARK(BM_UnicastChain)->Arg(8);

/// Multicast flood over an n x n grid: one send duplicates across every
/// link with dedup at each node — the paper's Zeroconf traffic pattern and
/// the dominant packet-copy path in mesh campaigns.
void BM_FloodGrid(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::Network network(scheduler,
                       net::Topology::grid(side, side, lossless_link()),
                       /*seed=*/7);
  network.set_capture_enabled(false);
  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  send_flood();
  scheduler.run();
  network.reset_run_state();
  AllocCounter allocs;
  for (auto _ : state) {
    send_flood();
    scheduler.run();
    state.PauseTiming();
    network.reset_run_state();  // clear dedup sets between floods
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(delivered);
  report_allocs(state, allocs);
  // One flood delivers to every node in the grid.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_FloodGrid)->Arg(4)->Arg(8);

/// Flood with capture enabled: every rx/tx records the packet, so payload
/// copies dominate unless the buffer is shared.
void BM_FloodGridCaptured(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::Network network(scheduler,
                       net::Topology::grid(side, side, lossless_link()),
                       /*seed=*/7);
  network.set_capture_enabled(true);
  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  send_flood();
  scheduler.run();
  network.reset_run_state();
  AllocCounter allocs;
  for (auto _ : state) {
    send_flood();
    scheduler.run();
    state.PauseTiming();
    network.reset_run_state();  // also drops captures between floods
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(delivered);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_FloodGridCaptured)->Arg(6);

// ---- disabled-link set ------------------------------------------------------

/// Micro-gate for the flat sorted-vector LinkSet that replaced the
/// std::set<LinkKey> on the packet path: a fault-flap-sized set (a handful
/// of links down, as the dynamic-world engine produces) under the mix the
/// kernel actually runs — mostly contains() from transfer()/flood(), with
/// occasional insert/erase from set_link_up().  Steady state must report 0
/// allocations: the vector keeps its capacity across flaps.
void BM_LinkSetChurn(benchmark::State& state) {
  const NodeId links = static_cast<NodeId>(state.range(0));
  net::LinkSet set;
  for (NodeId i = 0; i < links; ++i) set.insert(i, i + 1);  // warm capacity
  for (NodeId i = 0; i < links; ++i) set.erase(i, i + 1);
  std::uint64_t hits = 0;
  AllocCounter allocs;
  for (auto _ : state) {
    for (NodeId i = 0; i < links; ++i) set.insert(i, i + 1);
    for (NodeId i = 0; i < links * 8; ++i) {
      hits += set.contains(i % (links * 2), i % (links * 2) + 1) ? 1 : 0;
    }
    for (NodeId i = 0; i < links; ++i) set.erase(i, i + 1);
  }
  benchmark::DoNotOptimize(hits);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(links * 10));
}
BENCHMARK(BM_LinkSetChurn)->Arg(8)->Arg(64);

/// Flood with links down: every transfer() now takes the LinkSet-lookup
/// branch (non-empty disabled set), the exact path the std::set used to
/// gate.  Compare against BM_FloodGrid to see the degraded-path overhead.
void BM_FloodGridDegraded(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  sim::Scheduler scheduler;
  net::Network network(scheduler,
                       net::Topology::grid(side, side, lossless_link()),
                       /*seed=*/7);
  network.set_capture_enabled(false);
  // Take down a diagonal of links so the disabled set is non-empty but the
  // grid stays connected and the flood still reaches every node.
  for (std::size_t i = 0; i + 1 < side; ++i) {
    const NodeId a = static_cast<NodeId>(i * side + i);
    (void)network.set_link_up(a, static_cast<NodeId>(a + 1), false);
  }
  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  send_flood();
  scheduler.run();
  network.reset_run_state();
  AllocCounter allocs;
  for (auto _ : state) {
    send_flood();
    scheduler.run();
    state.PauseTiming();
    network.reset_run_state();
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(delivered);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_FloodGridDegraded)->Arg(8);

// ---- event bus --------------------------------------------------------------

/// Publish with `range(0)` distinctly-named subscribers plus one wildcard;
/// only one named subscriber matches.  Linear string-scan dispatch degrades
/// with subscriber count; indexed dispatch should not.
void BM_BusPublish(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  sim::EventBus bus;
  std::uint64_t hits = 0;
  for (int i = 0; i < subscribers; ++i) {
    bus.subscribe("event_" + std::to_string(i),
                  [&hits](const sim::BusEvent&) { ++hits; });
  }
  bus.subscribe("", [&hits](const sim::BusEvent&) { ++hits; });
  sim::BusEvent event{SimTime::zero(), "node0", "event_0", Value{}};
  bus.publish(event);
  AllocCounter allocs;
  for (auto _ : state) {
    bus.publish(event);
  }
  benchmark::DoNotOptimize(hits);
  report_allocs(state, allocs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusPublish)->Arg(1)->Arg(100);

}  // namespace
}  // namespace excovery

// Custom main: default the JSON output to BENCH_kernel.json so the perf
// trajectory is tracked without remembering reporter flags.
int main(int argc, char** argv) {
  std::vector<std::string> args_storage(argv, argv + argc);
  bool has_out = false;
  for (const std::string& arg : args_storage) {
    if (arg.rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args_storage.push_back("--benchmark_out=BENCH_kernel.json");
    args_storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(args_storage.size());
  for (std::string& arg : args_storage) args.push_back(arg.data());
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
