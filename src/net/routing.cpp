#include "net/routing.hpp"

#include <algorithm>
#include <queue>

namespace excovery::net {

RoutingTable::RoutingTable(const Topology& topology) { rebuild(topology); }

void RoutingTable::rebuild(const Topology& topology) {
  size_ = topology.node_count();
  next_hop_.assign(size_ * size_, kInvalidNode);
  hops_.assign(size_ * size_, -1);

  // Adjacency lists, sorted for deterministic BFS order.
  std::vector<std::vector<NodeId>> adjacency(size_);
  for (const Link& link : topology.links()) {
    adjacency[link.a].push_back(link.b);
    adjacency[link.b].push_back(link.a);
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());

  // BFS from every source.
  for (NodeId source = 0; source < size_; ++source) {
    std::vector<NodeId> parent(size_, kInvalidNode);
    std::vector<std::int16_t> dist(size_, -1);
    std::queue<NodeId> frontier;
    frontier.push(source);
    dist[source] = 0;
    while (!frontier.empty()) {
      NodeId current = frontier.front();
      frontier.pop();
      for (NodeId next : adjacency[current]) {
        if (dist[next] < 0) {
          dist[next] = static_cast<std::int16_t>(dist[current] + 1);
          parent[next] = current;
          frontier.push(next);
        }
      }
    }
    for (NodeId target = 0; target < size_; ++target) {
      hops_[index(source, target)] = dist[target];
      if (target == source || dist[target] < 0) continue;
      // Walk back from target to the neighbour of source.
      NodeId walk = target;
      while (parent[walk] != source) walk = parent[walk];
      next_hop_[index(source, target)] = walk;
    }
  }
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return kInvalidNode;
  return next_hop_[index(from, to)];
}

int RoutingTable::hop_count(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return -1;
  return hops_[index(from, to)];
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from >= size_ || to >= size_) return out;
  if (from == to) return {from};
  if (hop_count(from, to) < 0) return out;
  out.push_back(from);
  NodeId current = from;
  while (current != to) {
    current = next_hop(current, to);
    if (current == kInvalidNode) return {};
    out.push_back(current);
  }
  return out;
}

}  // namespace excovery::net
