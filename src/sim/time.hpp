// Simulated time.
//
// All simulation timestamps are integer nanoseconds from the start of the
// simulation ("global reference time").  Integer arithmetic keeps the
// discrete-event kernel fully deterministic; the ExCovery measurement layer
// converts to seconds only at reporting boundaries.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace excovery::sim {

/// A point in simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) noexcept : nanos_(nanos) {}

  static constexpr SimTime zero() noexcept { return SimTime(0); }
  static constexpr SimTime max() noexcept {
    return SimTime(INT64_MAX);
  }
  static constexpr SimTime from_seconds(double seconds) noexcept {
    return SimTime(static_cast<std::int64_t>(seconds * 1e9));
  }
  static constexpr SimTime from_millis(std::int64_t ms) noexcept {
    return SimTime(ms * 1'000'000);
  }
  static constexpr SimTime from_micros(std::int64_t us) noexcept {
    return SimTime(us * 1'000);
  }

  constexpr std::int64_t nanos() const noexcept { return nanos_; }
  constexpr double seconds() const noexcept {
    return static_cast<double>(nanos_) / 1e9;
  }
  constexpr double millis() const noexcept {
    return static_cast<double>(nanos_) / 1e6;
  }

  /// "1.234567s" style rendering for logs and timelines.
  std::string to_string() const;

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime d) const noexcept {
    return SimTime(nanos_ + d.nanos_);
  }
  constexpr SimTime operator-(SimTime d) const noexcept {
    return SimTime(nanos_ - d.nanos_);
  }
  constexpr SimTime& operator+=(SimTime d) noexcept {
    nanos_ += d.nanos_;
    return *this;
  }

 private:
  std::int64_t nanos_ = 0;
};

/// A duration alias; semantically distinct but representationally equal.
using SimDuration = SimTime;

}  // namespace excovery::sim
