#include "core/run_executor.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/strings.hpp"

namespace excovery::core {

RunExecutor::RunExecutor(const ExperimentDescription& description,
                         SimPlatform& platform, RunExecutorOptions options)
    : description_(description),
      platform_(platform),
      options_(std::move(options)) {}

sim::SimTime RunExecutor::run_epoch(std::int64_t run_id) const noexcept {
  // Worst case per attempt: the full watchdog plus the settle drain; one
  // extra second absorbs preparation/clean-up time.  Sizing the slot for
  // every allowed attempt keeps a retried run inside its own slot, so the
  // *next* run still starts exactly at its epoch.
  std::int64_t attempt_ns = options_.run_watchdog.nanos() +
                            options_.settle.nanos() +
                            sim::SimDuration::from_seconds(1).nanos();
  std::int64_t stride = attempt_ns * options_.max_attempts_per_run;
  return sim::SimTime((run_id - 1) * stride);
}

Status RunExecutor::execute_run(const RunSpec& run, int attempt) {
  // Fast-forward to the run's canonical epoch (a no-op when the clock is
  // already past it, e.g. on retries).  Leftover timers from earlier runs
  // on this instance fire as gated no-ops during the jump; only then are
  // the per-run random substreams rebased, so the streams the run consumes
  // are untouched by the drain.
  platform_.scheduler().run_until(run_epoch(run.run_id));
  platform_.begin_run(run.run_id, attempt);

  current_run_ = &run;
  Status status = prepare_run(run);
  if (status.ok()) status = run_processes(run, attempt);
  // Clean-up happens even after a failed execution phase.
  Status cleanup = cleanup_run(run);
  current_run_ = nullptr;
  if (!status.ok()) return status;
  if (!cleanup.ok()) return cleanup;
  platform_.level2().mark_run_complete(run.run_id);
  return {};
}

Status RunExecutor::prepare_run(const RunSpec& run) {
  // "During preparation, the whole environment of the experiment process
  // must be reset to a defined initial working condition ... network
  // packets generated in previous runs must be dropped on all
  // participants."
  platform_.reset_run_state();
  platform_.recorder().begin_run(run.run_id);

  sim::SimTime run_start = platform_.scheduler().now();
  for (const std::string& node : platform_.node_names()) {
    ValueMap args;
    args["run_id"] = Value{run.run_id};
    EXC_TRY(node_action(node, "run_init", args));

    // "Preliminary measurements ... such as clock offsets for all
    // participants" (§IV-C1); stored on the master (§IV-B5).
    storage::SyncMeasurement sync;
    sync.run_id = run.run_id;
    sync.node = node;
    sync.offset_ns = platform_.measure_offset(node);
    sync.run_start_ns = run_start.nanos();
    platform_.level2().add_sync(sync);
  }
  return {};
}

Status RunExecutor::run_processes(const RunSpec& run, int attempt) {
  // Build interpreters: one per (actor process, mapped node), one per
  // manipulation process, one per environment process.
  std::vector<std::unique_ptr<ProcessInterpreter>> interpreters;

  for (const ActorProcess& process : description_.actor_processes) {
    auto it = run.actor_map.find(process.actor_id);
    if (it == run.actor_map.end()) continue;  // actor unmapped in this run
    for (const std::string& abstract : it->second) {
      EXC_ASSIGN_OR_RETURN(std::string concrete,
                           platform_.concrete_name(abstract));
      interpreters.push_back(std::make_unique<ProcessInterpreter>(
          platform_, description_, run, *this, ProcessInterpreter::Kind::kActor,
          concrete, process.actions,
          process.name + "@" + concrete));
    }
  }
  for (const ManipulationProcess& process :
       description_.manipulation_processes) {
    EXC_ASSIGN_OR_RETURN(std::string concrete,
                         platform_.concrete_name(process.node_id));
    interpreters.push_back(std::make_unique<ProcessInterpreter>(
        platform_, description_, run, *this,
        ProcessInterpreter::Kind::kManipulation, concrete, process.actions,
        "manipulation@" + concrete));
  }
  for (const EnvProcess& process : description_.env_processes) {
    interpreters.push_back(std::make_unique<ProcessInterpreter>(
        platform_, description_, run, *this,
        ProcessInterpreter::Kind::kEnvironment, "", process.actions, "env"));
  }

  std::size_t open = interpreters.size();
  std::optional<Error> first_error;
  for (auto& interpreter : interpreters) {
    interpreter->start([&open, &first_error](const ProcessInterpreter& done) {
      --open;
      if (done.state() == ProcessInterpreter::State::kFailed &&
          !first_error) {
        first_error = done.error();
      }
    });
  }

  // Test hook: simulate a mid-run platform failure.
  bool forced_abort = false;
  if (options_.abort_hook && options_.abort_hook(run.run_id, attempt)) {
    platform_.scheduler().schedule(
        sim::SimDuration::from_millis(10),
        [&forced_abort] { forced_abort = true; });
  }

  // Drive the simulation until all processes finish or the watchdog fires.
  sim::SimTime deadline = platform_.scheduler().now() + options_.run_watchdog;
  while (open > 0 && !forced_abort) {
    if (platform_.scheduler().now() >= deadline) break;
    if (platform_.scheduler().idle()) {
      // No pending events but processes still open: a wait with no timeout
      // can never complete.  Abort rather than spin.
      return err_aborted(strings::format(
          "run %lld deadlocked: %zu process(es) waiting with no pending "
          "events",
          static_cast<long long>(run.run_id), open));
    }
    platform_.scheduler().step();
  }
  if (forced_abort) {
    return err_aborted("platform failure injected by abort hook");
  }
  if (open > 0) {
    return err_aborted(strings::format(
        "run %lld hit the %0.1fs watchdog with %zu process(es) unfinished",
        static_cast<long long>(run.run_id), options_.run_watchdog.seconds(),
        open));
  }
  if (first_error) return *first_error;

  // Let in-flight packets drain so captures are complete.
  platform_.scheduler().run_until(platform_.scheduler().now() +
                                  options_.settle);
  return {};
}

Status RunExecutor::cleanup_run(const RunSpec& run) {
  // Environment manipulations end with the run.
  platform_.traffic().stop();
  if (env_drop_all_) {
    env_drop_all_->stop();
    env_drop_all_.reset();
  }
  for (const std::string& node : platform_.node_names()) {
    ValueMap args;
    args["run_id"] = Value{run.run_id};
    EXC_TRY(node_action(node, "run_exit", args));
  }
  return {};
}

Status RunExecutor::node_action(const std::string& concrete_node,
                                const std::string& method, ValueMap params) {
  rpc::RpcClient client = platform_.client(concrete_node);
  Result<Value> outcome =
      client.call(method, ValueArray{Value{std::move(params)}});
  if (!outcome.ok()) return std::move(outcome).error();
  return {};
}

Status RunExecutor::env_action(const std::string& method, ValueMap params) {
  if (!current_run_) return err_state("environment action outside a run");
  const RunSpec& run = *current_run_;

  if (method == "env_traffic_start") {
    faults::TrafficConfig config;
    if (auto it = params.find("bw"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(config.rate_kbps, it->second.to_double());
    }
    if (auto it = params.find("random_pairs"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t pairs, it->second.to_int());
      config.pairs = static_cast<int>(pairs);
    }
    if (auto it = params.find("choice"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(config.choice,
                           faults::parse_pair_choice(it->second.to_text()));
    }
    if (auto it = params.find("random_seed"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t seed, it->second.to_int());
      config.pair_seed = static_cast<std::uint64_t>(seed);
    }
    if (auto it = params.find("random_switch_amount"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t amount, it->second.to_int());
      config.switch_amount = static_cast<int>(amount);
    }
    if (auto it = params.find("random_switch_seed"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t seed, it->second.to_int());
      config.switch_seed = static_cast<std::uint64_t>(seed);
    }

    // Acting nodes of this run (concrete), environment nodes from the
    // platform.
    std::vector<net::NodeId> acting;
    for (const std::string& abstract : run.acting_nodes()) {
      EXC_ASSIGN_OR_RETURN(std::string concrete,
                           platform_.concrete_name(abstract));
      EXC_ASSIGN_OR_RETURN(net::NodeId id, platform_.node_id(concrete));
      acting.push_back(id);
    }
    std::vector<net::NodeId> environment;
    for (const std::string& name : platform_.environment_node_names()) {
      EXC_ASSIGN_OR_RETURN(net::NodeId id, platform_.node_id(name));
      environment.push_back(id);
    }
    EXC_TRY(platform_.traffic().start(
        config, acting, environment,
        static_cast<std::uint64_t>(run.replication)));
    platform_.recorder().record(kEnvironmentNode, "env_traffic_start",
                                Value{static_cast<std::int64_t>(
                                    platform_.traffic().active_pairs().size())});
    return {};
  }
  if (method == "env_traffic_stop") {
    platform_.traffic().stop();
    platform_.recorder().record(kEnvironmentNode, "env_traffic_stop");
    return {};
  }
  if (method == "env_drop_all_start") {
    if (env_drop_all_) return err_state("drop_all already active");
    faults::TemporalSpec temporal;  // until stopped
    EXC_ASSIGN_OR_RETURN(env_drop_all_,
                         platform_.injector().drop_all_packets(temporal));
    return {};
  }
  if (method == "env_drop_all_stop") {
    if (!env_drop_all_) return err_state("drop_all not active");
    env_drop_all_->stop();
    env_drop_all_.reset();
    return {};
  }
  if (method == "event_flag") {
    // Environment-scope event flags arrive here when raised through the
    // dispatcher (interpreter flow control already handles the common case).
    auto it = params.find("value");
    if (it == params.end()) return err_invalid("event_flag needs a value");
    platform_.recorder().record(kEnvironmentNode,
                                strings::strip_quotes(it->second.to_text()));
    return {};
  }
  // Node-targeted fault actions prefixed env_ run on every node: not in the
  // default set; extensions land here.
  return err_unsupported("unknown environment action '" + method + "'");
}

}  // namespace excovery::core
