// Unit tests for the storage module: tables, database files, the Table I
// package, level-2 stores, conditioning and the level-4 repository.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "stats/analysis.hpp"
#include "storage/conditioning.hpp"
#include "storage/database.hpp"
#include "storage/level2.hpp"
#include "storage/package.hpp"
#include "storage/repository.hpp"

namespace excovery::storage {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter = 0;
};

// ---- Table ---------------------------------------------------------------------

TableSchema point_schema() {
  return {"Points",
          {{"Id", ValueType::kInt, false},
           {"Label", ValueType::kString, true},
           {"X", ValueType::kDouble, false}}};
}

TEST(Table, InsertEnforcesArityAndTypes) {
  Table table(point_schema());
  EXPECT_TRUE(table.insert({Value{1}, Value{"a"}, Value{0.5}}).ok());
  EXPECT_TRUE(table.insert({Value{2}, Value{}, Value{1.5}}).ok());  // null ok
  EXPECT_FALSE(table.insert({Value{3}, Value{"b"}}).ok());          // arity
  EXPECT_FALSE(table.insert({Value{"x"}, Value{"b"}, Value{0.1}}).ok());
  EXPECT_FALSE(table.insert({Value{}, Value{"b"}, Value{0.1}}).ok());  // null id
  // Int widens into double columns.
  EXPECT_TRUE(table.insert({Value{4}, Value{"c"}, Value{2}}).ok());
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(Table, SelectAndCount) {
  Table table(point_schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .insert({Value{i}, Value{i % 2 ? "odd" : "even"},
                             Value{i * 0.5}})
                    .ok());
  }
  EXPECT_EQ(table.select_equals("Label", Value{"odd"}).size(), 5u);
  EXPECT_EQ(table.count_equals("Label", Value{"even"}), 5u);
  EXPECT_EQ(
      table.select([](const RowView& row) { return row.as_int(0) > 6; })
          .size(),
      3u);
  EXPECT_TRUE(table.select_equals("Missing", Value{1}).empty());
}

TEST(Table, OrderByIsStableAndChecked) {
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{3}, Value{"c"}, Value{1.0}}).ok());
  ASSERT_TRUE(table.insert({Value{1}, Value{"a"}, Value{2.0}}).ok());
  ASSERT_TRUE(table.insert({Value{2}, Value{"b"}, Value{3.0}}).ok());
  Result<std::vector<RowView>> ordered = table.order_by("Id");
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered.value()[0].as_int(0), 1);
  EXPECT_EQ(ordered.value()[2].as_int(0), 3);
  EXPECT_FALSE(table.order_by("Nope").ok());
}

TEST(Table, CellAccessByName) {
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{1}, Value{"a"}, Value{0.5}}).ok());
  Result<Value> cell = table.cell(table.row(0), "X");
  ASSERT_TRUE(cell.ok());
  EXPECT_DOUBLE_EQ(cell.value().as_double(), 0.5);
  EXPECT_FALSE(table.cell(table.row(0), "Nope").ok());
}

TEST(Table, IndexedQueriesMatchPredicateScanAfterInterleavedInserts) {
  Table table(point_schema());
  // Reference implementations through the plain predicate scan.
  auto scan_equals = [&](std::string_view column, const Value& value) {
    std::size_t col = *table.schema().column_index(column);
    std::vector<std::size_t> out;
    for (const RowView& view : table.select(
             [&](const RowView& row) { return row[col] == value; })) {
      out.push_back(view.index());
    }
    return out;
  };
  auto indexed_equals = [&](std::string_view column, const Value& value) {
    std::vector<std::size_t> out;
    for (const RowView& view : table.select_equals(column, value)) {
      out.push_back(view.index());
    }
    return out;
  };
  // Interleave inserts with queries so the lazily built index goes through
  // incremental maintenance, not one bulk build at the end.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(table
                    .insert({Value{i % 7}, Value{i % 3 ? "a" : "b"},
                             Value{static_cast<double>((i * 13) % 60)}})
                    .ok());
    if (i % 12 == 5) {
      for (int probe = 0; probe < 8; ++probe) {
        EXPECT_EQ(indexed_equals("Id", Value{probe}),
                  scan_equals("Id", Value{probe}));
      }
      EXPECT_EQ(indexed_equals("Label", Value{"a"}),
                scan_equals("Label", Value{"a"}));
      EXPECT_EQ(table.count_equals("Label", Value{"b"}),
                scan_equals("Label", Value{"b"}).size());
      // Probes that can never match: wrong type, unknown string.
      EXPECT_TRUE(table.select_equals("Id", Value{"a"}).empty());
      EXPECT_TRUE(table.select_equals("Label", Value{"nope"}).empty());
    }
  }
  // order_by equals a manual stable sort through Value comparison, also
  // after an insert invalidated a previously cached permutation.
  for (int round = 0; round < 2; ++round) {
    Result<std::vector<RowView>> ordered = table.order_by("X");
    ASSERT_TRUE(ordered.ok());
    std::vector<std::size_t> expected(table.row_count());
    std::iota(expected.begin(), expected.end(), 0u);
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return table.row(a)[2] < table.row(b)[2];
                     });
    ASSERT_EQ(ordered.value().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(ordered.value()[i].index(), expected[i]);
    }
    ASSERT_TRUE(table.insert({Value{99}, Value{"z"}, Value{-1.0}}).ok());
  }
}

TEST(Table, DoubleColumnPreservesIntCells) {
  // The insert type check accepts ints in double columns without
  // converting the stored Value; equality and ordering stay type-exact.
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{1}, Value{}, Value{2}}).ok());
  ASSERT_TRUE(table.insert({Value{2}, Value{}, Value{2.0}}).ok());
  EXPECT_TRUE(table.row(0)[2].is_int());
  EXPECT_TRUE(table.row(1)[2].is_double());
  EXPECT_DOUBLE_EQ(table.row(0).as_double(2), 2.0);  // typed read widens
  // Indexed lookups distinguish Value{2} from Value{2.0}, like Value==.
  ASSERT_EQ(table.select_equals("X", Value{2}).size(), 1u);
  EXPECT_EQ(table.select_equals("X", Value{2})[0].index(), 0u);
  ASSERT_EQ(table.select_equals("X", Value{2.0}).size(), 1u);
  EXPECT_EQ(table.select_equals("X", Value{2.0})[0].index(), 1u);
}

TEST(Table, NegativeZeroMatchesPositiveZero) {
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{1}, Value{}, Value{-0.0}}).ok());
  ASSERT_TRUE(table.insert({Value{2}, Value{}, Value{0.0}}).ok());
  // IEEE: -0.0 == 0.0, so both probes hit both rows.
  EXPECT_EQ(table.select_equals("X", Value{0.0}).size(), 2u);
  EXPECT_EQ(table.count_equals("X", Value{-0.0}), 2u);
}

// ---- Database ------------------------------------------------------------------

TEST(Database, CreateAndLookup) {
  Database db;
  ASSERT_TRUE(db.create_table(point_schema()).ok());
  EXPECT_FALSE(db.create_table(point_schema()).ok());  // duplicate
  EXPECT_FALSE(db.create_table({"Empty", {}}).ok());   // no columns
  EXPECT_NE(db.table("Points"), nullptr);
  EXPECT_EQ(db.table("Nope"), nullptr);
  EXPECT_TRUE(db.require_table("Points").ok());
  EXPECT_FALSE(db.require_table("Nope").ok());
}

TEST(Database, SerializeRoundTrip) {
  Database db;
  Table* table = db.create_table(point_schema()).value();
  ASSERT_TRUE(table->insert({Value{1}, Value{"x"}, Value{2.5}}).ok());
  ASSERT_TRUE(table->insert({Value{2}, Value{}, Value{-1.0}}).ok());

  Result<Database> back = Database::deserialize(db.serialize());
  ASSERT_TRUE(back.ok());
  const Table* restored = back.value().table("Points");
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->row_count(), 2u);
  EXPECT_EQ(restored->row(0).materialize(), table->row(0).materialize());
  EXPECT_EQ(restored->row(1).materialize(), table->row(1).materialize());
  EXPECT_EQ(restored->schema().columns.size(), 3u);
}

TEST(Database, SaveLoadFile) {
  TempDir dir;
  std::string path = (dir.path / "test.excovery").string();
  Database db;
  Table* table = db.create_table(point_schema()).value();
  ASSERT_TRUE(table->insert({Value{7}, Value{"seven"}, Value{7.7}}).ok());
  ASSERT_TRUE(db.save(path).ok());

  Result<Database> loaded = Database::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().table("Points")->row_count(), 1u);

  EXPECT_FALSE(Database::load((dir.path / "missing").string()).ok());
}

TEST(Database, CorruptFileRejected) {
  Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(Database::deserialize(garbage).ok());
  Bytes truncated = [] {
    Database db;
    (void)db.create_table(point_schema());
    return db.serialize();
  }();
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(Database::deserialize(truncated).ok());
}

TEST(Database, RoundTripEveryValueType) {
  Database db;
  Table* t = db.create_table({"Everything",
                              {{"I", ValueType::kInt, true},
                               {"D", ValueType::kDouble, true},
                               {"B", ValueType::kBool, true},
                               {"S", ValueType::kString, true},
                               {"Y", ValueType::kBytes, true},
                               {"A", ValueType::kArray, true},
                               {"M", ValueType::kMap, true}}})
                 .value();
  ValueArray array{Value{1}, Value{"two"}, Value{}};
  ValueMap map;
  map.emplace("k", Value{3.5});
  ASSERT_TRUE(t->insert({Value{-42}, Value{2.5}, Value{true}, Value{"text"},
                         Value{Bytes{0, 255, 7}}, Value{array}, Value{map}})
                  .ok());
  // A row of nothing but nulls.
  ASSERT_TRUE(t->insert({Value{}, Value{}, Value{}, Value{}, Value{},
                         Value{}, Value{}})
                  .ok());
  // Edge cells: int stored in a double column, empty string/bytes/array/map.
  ASSERT_TRUE(t->insert({Value{1}, Value{3}, Value{false}, Value{""},
                         Value{Bytes{}}, Value{ValueArray{}},
                         Value{ValueMap{}}})
                  .ok());
  ASSERT_TRUE(db.create_table({"Empty", {{"Only", ValueType::kString, true}}})
                  .ok());

  Result<Database> back = Database::deserialize(db.serialize());
  ASSERT_TRUE(back.ok());
  const Table* restored = back.value().table("Everything");
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->row_count(), 3u);
  for (std::size_t r = 0; r < restored->row_count(); ++r) {
    EXPECT_EQ(restored->row(r).materialize(), t->row(r).materialize());
  }
  // The int-in-double cell survives as a typed int Value.
  EXPECT_TRUE(restored->row(2)[1].is_int());
  ASSERT_NE(back.value().table("Empty"), nullptr);
  EXPECT_EQ(back.value().table("Empty")->row_count(), 0u);
}

TEST(Database, SerializationIsDeterministic) {
  Database db;
  Table* t = db.create_table(point_schema()).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        t->insert({Value{i}, Value{i % 2 ? "x" : "y"}, Value{i * 0.25}}).ok());
  }
  Bytes first = db.serialize();
  // Building query indexes must not change the serialised image.
  (void)t->select_equals("Label", Value{"x"});
  (void)t->order_by("X");
  EXPECT_EQ(db.serialize(), first);
}

TEST(Database, LegacyV1FormatStillReadable) {
  // Hand-written version-1 image: cell-by-cell tagged Values, row major.
  ByteWriter w;
  w.u32(0x45584342);  // magic
  w.u16(1);           // legacy version
  w.u32(1);           // one table
  w.string("Points");
  w.u16(3);
  w.string("Id");
  w.u8(static_cast<std::uint8_t>(ValueType::kInt));
  w.u8(0);
  w.string("Label");
  w.u8(static_cast<std::uint8_t>(ValueType::kString));
  w.u8(1);
  w.string("X");
  w.u8(static_cast<std::uint8_t>(ValueType::kDouble));
  w.u8(0);
  w.u64(2);
  w.value(Value{1});
  w.value(Value{"a"});
  w.value(Value{0.5});
  w.value(Value{2});
  w.value(Value{});
  w.value(Value{1.5});

  Result<Database> db = Database::deserialize(w.take());
  ASSERT_TRUE(db.ok());
  const Table* t = db.value().table("Points");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->row_count(), 2u);
  EXPECT_EQ(t->row(0).materialize(), (Row{Value{1}, Value{"a"}, Value{0.5}}));
  EXPECT_TRUE(t->row(1).is_null(1));
}

TEST(Database, CorruptV2ImagesRejected) {
  // Unsupported version.
  ByteWriter w;
  w.u32(0x45584342);
  w.u16(9);
  w.u32(0);
  EXPECT_FALSE(Database::deserialize(w.take()).ok());

  Database db;
  Table* t = db.create_table(point_schema()).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->insert({Value{i}, Value{"s"}, Value{1.0 * i}}).ok());
  }
  Bytes good = db.serialize();
  ASSERT_TRUE(Database::deserialize(good).ok());
  // Truncation anywhere — header, schema, or inside the column blocks.
  for (std::size_t cut :
       {good.size() - 1, good.size() - 9, good.size() / 2, std::size_t{5}}) {
    Bytes bad(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Database::deserialize(bad).ok()) << "cut at " << cut;
  }
  // Flipped magic.
  Bytes flipped = good;
  flipped[0] ^= 0xFF;
  EXPECT_FALSE(Database::deserialize(flipped).ok());
}

// ---- ExperimentPackage (Table I) ----------------------------------------------------

TEST(Package, SchemaMatchesTableI) {
  ExperimentPackage package;
  // The eight tables of the paper's Table I, in order, plus the Metrics and
  // Provenance extensions (out-of-band observability data; not required on
  // load, so legacy packages still open).
  EXPECT_EQ(package.database().table_names(),
            (std::vector<std::string>{
                "ExperimentInfo", "Logs", "EEFiles", "ExperimentMeasurements",
                "RunInfos", "ExtraRunMeasurements", "Events", "Packets",
                "Metrics", "Provenance"}));
  std::string schema = package.database().schema_description();
  EXPECT_NE(schema.find("ExperimentInfo | ExpXML, EEVersion, Name, Comment"),
            std::string::npos);
  EXPECT_NE(schema.find(
                "Events | RunID, NodeID, CommonTime, EventType, Parameter"),
            std::string::npos);
  EXPECT_NE(
      schema.find("Packets | RunID, NodeID, CommonTime, SrcNodeID, Data"),
      std::string::npos);
  EXPECT_NE(schema.find("RunInfos | RunID, NodeID, StartTime, TimeDiff"),
            std::string::npos);
}

TEST(Package, ExperimentInfoIsSingleTuple) {
  ExperimentPackage package;
  EXPECT_FALSE(package.description_xml().ok());  // not set yet
  ASSERT_TRUE(package.set_experiment_info("<experiment/>", "exp", "c").ok());
  EXPECT_FALSE(package.set_experiment_info("<x/>", "again", "").ok());
  EXPECT_EQ(package.description_xml().value(), "<experiment/>");
  EXPECT_EQ(package.experiment_name().value(), "exp");
  EXPECT_EQ(package.ee_version().value(), kEeVersion);
}

TEST(Package, EventAndPacketReadersSortByTime) {
  ExperimentPackage package;
  ASSERT_TRUE(package.add_event({1, "B", 2.0, "late", ""}).ok());
  ASSERT_TRUE(package.add_event({1, "A", 1.0, "early", ""}).ok());
  ASSERT_TRUE(package.add_event({2, "A", 0.5, "other_run", ""}).ok());
  ASSERT_TRUE(package.add_run_info({1, "A", 0.0, 0.001}).ok());
  ASSERT_TRUE(package.add_run_info({2, "A", 5.0, 0.002}).ok());

  Result<std::vector<EventRow>> run1 = package.events(1);
  ASSERT_TRUE(run1.ok());
  ASSERT_EQ(run1.value().size(), 2u);
  EXPECT_EQ(run1.value()[0].event_type, "early");
  EXPECT_EQ(run1.value()[1].event_type, "late");

  Result<std::vector<EventRow>> all = package.all_events();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 3u);
  EXPECT_EQ(all.value()[2].event_type, "other_run");

  EXPECT_EQ(package.run_ids(), (std::vector<std::int64_t>{1, 2}));
}

TEST(Package, SaveLoadPreservesEverything) {
  TempDir dir;
  std::string path = (dir.path / "exp.excovery").string();
  ExperimentPackage package;
  ASSERT_TRUE(package.set_experiment_info("<e/>", "n", "c").ok());
  ASSERT_TRUE(package.add_log("SU0", "log text").ok());
  ASSERT_TRUE(package.add_ee_file("master.bin", Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(package.add_experiment_measurement(1, "env", "topo", "a b 1").ok());
  ASSERT_TRUE(package.add_run_info({1, "SU0", 0.0, -0.004}).ok());
  ASSERT_TRUE(package.add_extra_run_measurement(1, "SU0", "plugin/x", "7").ok());
  ASSERT_TRUE(package.add_event({1, "SU0", 0.5, "sd_start_search", "_t"}).ok());
  ASSERT_TRUE(package.add_packet({1, "SU0", 0.6, "SM0", Bytes{9, 9}}).ok());
  ASSERT_TRUE(package.save(path).ok());

  Result<ExperimentPackage> loaded = ExperimentPackage::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().experiment_name().value(), "n");
  EXPECT_EQ(loaded.value().log_for("SU0"), "log text");
  EXPECT_EQ(loaded.value().event_count(), 1u);
  EXPECT_EQ(loaded.value().packet_count(), 1u);
  Result<std::vector<PacketRow>> packets = loaded.value().packets(1);
  ASSERT_TRUE(packets.ok());
  ASSERT_EQ(packets.value().size(), 1u);
  EXPECT_EQ(packets.value()[0].src_node_id, "SM0");
  EXPECT_EQ(packets.value()[0].data, (Bytes{9, 9}));
}

TEST(Package, FromDatabaseValidatesSchema) {
  Database empty;
  EXPECT_FALSE(ExperimentPackage::from_database(std::move(empty)).ok());
}

// ---- Level2Store -------------------------------------------------------------------

TEST(Level2, RecordsPerNodeAndScopes) {
  Level2Store store;
  store.node("A").record_event({1, 100, "x", Value{}});
  store.node("A").record_event({2, 200, "y", Value{}});
  store.node("B").record_packet({1, 150, "A", Bytes{1}});
  store.node("A").add_run_blob(1, "m", "v");
  store.node("A").add_experiment_blob("topo", "t");
  store.node("A").add_plugin_measurement(1, "plug", "metric", "42");

  EXPECT_EQ(store.node_names(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(store.node("A").events().size(), 2u);
  EXPECT_EQ(store.node("B").packets().size(), 1u);
  EXPECT_EQ(store.node("A").plugin_data()[0].name, "plug/metric");
}

TEST(Level2, DiscardRunRemovesOnlyThatRun) {
  Level2Store store;
  store.node("A").record_event({1, 100, "x", Value{}});
  store.node("A").record_event({2, 200, "y", Value{}});
  store.add_sync({1, "A", 50, 0});
  store.add_sync({2, "A", 60, 1000});
  store.mark_run_complete(1);
  store.mark_run_complete(2);

  store.discard_run(1);
  EXPECT_EQ(store.node("A").events().size(), 1u);
  EXPECT_EQ(store.node("A").events()[0].run_id, 2);
  EXPECT_EQ(store.syncs().size(), 1u);
  EXPECT_FALSE(store.run_complete(1));
  EXPECT_TRUE(store.run_complete(2));
  EXPECT_EQ(store.offset_ns(2, "A"), 60);
  EXPECT_EQ(store.offset_ns(1, "A"), 0);  // gone
}

TEST(Level2, DirectoryRoundTrip) {
  TempDir dir;
  Level2Store store;
  store.node("SU0").record_event({1, 123, "e", Value{"p"}});
  store.node("SU0").append_log("hello\n");
  store.node("SM0").record_packet({1, 456, "SU0", Bytes{7, 8}});
  store.add_sync({1, "SU0", -5000, 0});
  store.mark_run_complete(1);
  ASSERT_TRUE(store.write_to_directory(dir.path.string()).ok());

  Result<Level2Store> loaded =
      Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().node_names(),
            (std::vector<std::string>{"SM0", "SU0"}));
  ASSERT_EQ(loaded.value().node("SU0").events().size(), 1u);
  EXPECT_EQ(loaded.value().node("SU0").events()[0].parameter, Value{"p"});
  EXPECT_EQ(loaded.value().node("SU0").log(), "hello\n");
  EXPECT_EQ(loaded.value().node("SM0").packets()[0].data, (Bytes{7, 8}));
  EXPECT_EQ(loaded.value().offset_ns(1, "SU0"), -5000);
  EXPECT_TRUE(loaded.value().run_complete(1));
}

TEST(Level2, LoadFromEmptyDirectoryYieldsEmptyStore) {
  TempDir dir;
  Result<Level2Store> loaded =
      Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().node_names().empty());
}

// ---- conditioning ---------------------------------------------------------------------

TEST(Conditioning, CommonTimeSubtractsOffset) {
  // local = common + offset  =>  common = local - offset.
  EXPECT_DOUBLE_EQ(to_common_time(1'500'000'000, 500'000'000), 1.0);
  EXPECT_DOUBLE_EQ(to_common_time(1'000'000'000, -250'000'000), 1.25);
}

TEST(Conditioning, UnifiesTimeBaseAcrossNodes) {
  Level2Store level2;
  // Two nodes observing the same instant: A's clock is +100ms, B's -50ms.
  level2.node("A").record_event({1, 1'100'000'000, "tick", Value{}});
  level2.node("B").record_event({1, 950'000'000, "tick", Value{}});
  level2.add_sync({1, "A", 100'000'000, 0});
  level2.add_sync({1, "B", -50'000'000, 0});
  level2.mark_run_complete(1);

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  Result<std::vector<EventRow>> events = package.value().events(1);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 2u);
  EXPECT_NEAR(events.value()[0].common_time, 1.0, 1e-9);
  EXPECT_NEAR(events.value()[1].common_time, 1.0, 1e-9);
}

TEST(Conditioning, IncompleteRunsExcludedByDefault) {
  Level2Store level2;
  level2.node("A").record_event({1, 100, "done", Value{}});
  level2.node("A").record_event({2, 200, "aborted", Value{}});
  level2.add_sync({1, "A", 0, 0});
  level2.add_sync({2, "A", 0, 0});
  level2.mark_run_complete(1);  // run 2 aborted

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package.value().event_count(), 1u);
  EXPECT_EQ(package.value().run_ids(), (std::vector<std::int64_t>{1}));

  ConditioningOptions keep_all;
  keep_all.completed_runs_only = false;
  Result<ExperimentPackage> full = condition(level2, "<e/>", keep_all);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().event_count(), 2u);
}

TEST(Conditioning, BlobsRouteToCorrectTables) {
  Level2Store level2;
  level2.node("A").add_experiment_blob("topology_before", "x y 2");
  level2.node("A").add_run_blob(1, "hops", "1");
  level2.node("A").add_plugin_measurement(1, "plug", "m", "v");
  level2.node("A").append_log("LOG LINE");
  level2.mark_run_complete(1);

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package.value().database().table("ExperimentMeasurements")
                ->row_count(),
            1u);
  EXPECT_EQ(
      package.value().database().table("ExtraRunMeasurements")->row_count(),
      2u);
  EXPECT_EQ(package.value().log_for("A"), "LOG LINE");
}

/// A level-2 store with several nodes, runs, logs, blobs and plugin data —
/// enough surface to exercise every merge path of condition().
Level2Store busy_level2() {
  Level2Store level2;
  for (int n = 0; n < 5; ++n) {
    std::string node = "N" + std::to_string(n);
    for (int run = 1; run <= 4; ++run) {
      for (int e = 0; e < 20; ++e) {
        level2.node(node).record_event(
            {run, run * 1'000'000'000LL + e * 1000 + n,
             "ev" + std::to_string(e % 3), Value{e}});
      }
      for (int p = 0; p < 10; ++p) {
        level2.node(node).record_packet(
            {run, run * 1'000'000'000LL + p * 500, "N0",
             Bytes{static_cast<std::uint8_t>(p),
                   static_cast<std::uint8_t>(n)}});
      }
      level2.node(node).add_run_blob(run, "hops", std::to_string(run));
      level2.node(node).add_plugin_measurement(run, "plug", "m",
                                               std::to_string(n));
      level2.add_sync({run, node, n * 1000LL, run * 1'000'000'000LL});
    }
    level2.node(node).add_experiment_blob("topo", node);
    level2.node(node).append_log("log of " + node + "\n");
  }
  level2.mark_run_complete(1);
  level2.mark_run_complete(2);
  level2.mark_run_complete(3);  // run 4 stays incomplete
  return level2;
}

TEST(Conditioning, ParallelShardsBitIdenticalAcrossWorkerCounts) {
  Level2Store level2 = busy_level2();
  auto image_for = [&](std::size_t workers) {
    ConditioningOptions options;
    options.workers = workers;
    Result<ExperimentPackage> package = condition(level2, "<e/>", options);
    EXPECT_TRUE(package.ok());
    return package.value().database().serialize();
  };
  Bytes sequential = image_for(1);
  EXPECT_EQ(image_for(4), sequential);
  EXPECT_EQ(image_for(0), sequential);  // hardware concurrency
}

TEST(Conditioning, AnalysisOutputsIdenticalAcrossWorkerCounts) {
  // Discovery-shaped data: the stats pipeline must see identical packages
  // whether conditioning ran sequentially or on the pool.
  Level2Store level2;
  for (int run = 1; run <= 6; ++run) {
    level2.node("SU0").record_event(
        {run, run * 1'000'000'000LL, "sd_start_search", Value{}});
    level2.node("SU0").record_event(
        {run, run * 1'000'000'000LL + 40'000'000LL * run, "sd_service_add",
         Value{"SM0"}});
    level2.add_sync({run, "SU0", 123'000LL, run * 1'000'000'000LL});
    level2.add_sync({run, "SM0", -77'000LL, run * 1'000'000'000LL});
    level2.mark_run_complete(run);
  }
  level2.node("SM0").append_log("provider\n");

  ConditioningOptions sequential;
  sequential.workers = 1;
  ConditioningOptions pooled;
  pooled.workers = 4;
  Result<ExperimentPackage> a = condition(level2, "<e/>", sequential);
  Result<ExperimentPackage> b = condition(level2, "<e/>", pooled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Result<std::vector<double>> lat_a = stats::first_latencies(a.value());
  Result<std::vector<double>> lat_b = stats::first_latencies(b.value());
  ASSERT_TRUE(lat_a.ok());
  ASSERT_TRUE(lat_b.ok());
  EXPECT_EQ(lat_a.value(), lat_b.value());
  ASSERT_EQ(lat_a.value().size(), 6u);

  Result<stats::Proportion> resp_a =
      stats::responsiveness(a.value(), 0.15, 1);
  Result<stats::Proportion> resp_b =
      stats::responsiveness(b.value(), 0.15, 1);
  ASSERT_TRUE(resp_a.ok());
  ASSERT_TRUE(resp_b.ok());
  EXPECT_EQ(resp_a.value().successes, resp_b.value().successes);
  EXPECT_EQ(resp_a.value().trials, resp_b.value().trials);
}

// ---- repository (level 4) ------------------------------------------------------------------

ExperimentPackage tiny_package(const std::string& name, int runs) {
  ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", name, "");
  for (int run = 1; run <= runs; ++run) {
    (void)package.add_run_info({run, "A", 0.0, 0.0});
    (void)package.add_event({run, "A", 0.1, "sd_service_add", "SM0"});
  }
  return package;
}

TEST(Repository, StoreFetchAndIndex) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo.value().size(), 0u);

  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 2)).ok());
  ASSERT_TRUE(repo.value().store("exp-b", tiny_package("B", 3)).ok());
  EXPECT_FALSE(repo.value().store("../evil", tiny_package("E", 1)).ok());

  EXPECT_TRUE(repo.value().contains("exp-a"));
  EXPECT_EQ(repo.value().experiment_ids(),
            (std::vector<std::string>{"exp-a", "exp-b"}));
  Result<ExperimentPackage> fetched = repo.value().fetch("exp-b");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().experiment_name().value(), "B");
  EXPECT_FALSE(repo.value().fetch("nope").ok());
}

TEST(Repository, ReStoreReplacesWithoutLeakingFilesOrIndexEntries) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("old", 2)).ok());
  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("new", 1)).ok());

  // Replace semantics: the new content is served, exactly one package
  // file and one index line remain, and no .tmp sibling leaks.
  Result<ExperimentPackage> fetched = repo.value().fetch("exp-a");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().experiment_name().value(), "new");
  EXPECT_EQ(repo.value().size(), 1u);

  std::size_t packages = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
    if (entry.path().extension() == ".excovery") ++packages;
  }
  EXPECT_EQ(packages, 1u);

  std::ifstream index(dir.path / "index.txt");
  std::size_t lines = 0;
  for (std::string line; std::getline(index, line);) ++lines;
  EXPECT_EQ(lines, 1u);
}

TEST(Repository, ReopenRebuildsIndexFromFiles) {
  TempDir dir;
  {
    Result<Repository> repo = Repository::open(dir.path.string());
    ASSERT_TRUE(repo.ok());
    ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 1)).ok());
  }
  Result<Repository> reopened = Repository::open(dir.path.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().contains("exp-a"));
}

TEST(Repository, CrossExperimentQueries) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 2)).ok());
  ASSERT_TRUE(repo.value().store("exp-b", tiny_package("B", 3)).ok());

  Result<std::vector<Repository::CrossEvent>> adds =
      repo.value().events_of_type("sd_service_add");
  ASSERT_TRUE(adds.ok());
  EXPECT_EQ(adds.value().size(), 5u);

  Result<std::vector<Repository::Summary>> summaries =
      repo.value().summaries();
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries.value().size(), 2u);
  EXPECT_EQ(summaries.value()[0].runs, 2u);
  EXPECT_EQ(summaries.value()[1].events, 3u);
}

// ---- repository CAS space ------------------------------------------------------------------

constexpr char kDigestA[] =
    "aa11223344556677889900aabbccddeeff00112233445566778899aabbccddee";
constexpr char kDigestB[] =
    "bb11223344556677889900aabbccddeeff00112233445566778899aabbccddee";

TEST(Repository, CasStoreFetchAndLayout) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  EXPECT_FALSE(repo.value().contains_hash(kDigestA));

  ASSERT_TRUE(repo.value().store_by_hash(kDigestA, tiny_package("A", 2)).ok());
  EXPECT_TRUE(repo.value().contains_hash(kDigestA));
  EXPECT_EQ(repo.value().cas_size(), 1u);
  // Sharded layout: cas/<first two hex chars>/<digest>.excovery.
  EXPECT_TRUE(fs::exists(dir.path / "cas" / "aa" /
                         (std::string(kDigestA) + ".excovery")));

  Result<ExperimentPackage> fetched = repo.value().fetch_by_hash(kDigestA);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().experiment_name().value(), "A");
  EXPECT_FALSE(repo.value().fetch_by_hash(kDigestB).ok());

  // Content addressing makes re-storing idempotent: equal digest means
  // equal content, so the original file is kept as-is.
  ASSERT_TRUE(repo.value().store_by_hash(kDigestA, tiny_package("A", 2)).ok());
  EXPECT_EQ(repo.value().cas_size(), 1u);

  // Digest validation: ids and digests live in separate namespaces.
  EXPECT_FALSE(repo.value().store_by_hash("UPPER", tiny_package("X", 1)).ok());
  EXPECT_FALSE(
      repo.value().store_by_hash("../evil", tiny_package("X", 1)).ok());
  EXPECT_FALSE(repo.value().contains("exp-a"));
}

TEST(Repository, CasSurvivesReopenAndToleratesCorruptIndexes) {
  TempDir dir;
  {
    Result<Repository> repo = Repository::open(dir.path.string());
    ASSERT_TRUE(repo.ok());
    ASSERT_TRUE(
        repo.value().store_by_hash(kDigestA, tiny_package("A", 2)).ok());
    ASSERT_TRUE(repo.value().store("exp-a", tiny_package("plain", 1)).ok());
  }

  // Corrupt both index files the way a crash mid-write could: garbage
  // lines, missing columns, and entries pointing at files that don't
  // exist.  open() must skip the damage and keep the real packages.
  std::ofstream(dir.path / "index.txt", std::ios::app)
      << "no-tab-line\n\t\nexp-gone\tgone.excovery\n";
  std::ofstream(dir.path / "cas-index.txt", std::ios::app)
      << "NOT-HEX\tcas/xx/y.excovery\n"
      << kDigestB << "\tcas/bb/" << kDigestB << ".excovery\n"
      << kDigestA << "\t../outside.excovery\n";

  Result<Repository> reopened = Repository::open(dir.path.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().contains("exp-a"));
  EXPECT_FALSE(reopened.value().contains("exp-gone"));
  EXPECT_TRUE(reopened.value().contains_hash(kDigestA));
  EXPECT_FALSE(reopened.value().contains_hash(kDigestB));
  EXPECT_EQ(reopened.value().cas_size(), 1u);
  Result<ExperimentPackage> fetched =
      reopened.value().fetch_by_hash(kDigestA);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().experiment_name().value(), "A");
}

TEST(Repository, StoreLeavesNoTempFilesBehind) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 1)).ok());
  ASSERT_TRUE(repo.value().store_by_hash(kDigestA, tiny_package("A", 1)).ok());
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

}  // namespace
}  // namespace excovery::storage
