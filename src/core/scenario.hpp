// Canonical case-study scenarios (§V): ready-made experiment descriptions
// for service discovery as an experiment process, exactly in the shape of
// the paper's Figures 9 and 10, plus the traffic-generation environment
// process of Figure 7 and message-loss manipulation processes (§IV-D).
//
// Examples, tests and the reproduction benches all build on these, the way
// the prototype shipped its SD process descriptions with the framework.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/description.hpp"
#include "net/topology.hpp"

namespace excovery::core::scenario {

enum class TopologyKind { kFullMesh, kChain, kGrid, kRandomGeometric };

/// Dynamic-world knobs (DESIGN.md §12): churn, bursty loss and a timed
/// partition layered onto the canonical scenario as manipulation /
/// environment processes.  All schedules seed from fact_replication_id, so
/// realisations vary per run yet stay a pure function of the seed.
struct DynamicWorldOptions {
  /// Crash/restart churn on every SM node.
  bool sm_churn = false;
  double churn_mean_uptime_s = 3.0;
  double churn_mean_downtime_s = 1.0;
  std::string churn_distribution = "exponential";  ///< or "fixed"

  /// Gilbert-Elliott bursty loss on every SU node.
  bool ge_loss = false;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
  double ge_p_enter_bad = 0.05;
  double ge_p_exit_bad = 0.3;

  /// Timed bipartition: the named (concrete) nodes are cut off from the
  /// rest `partition_start_s` seconds into the run and healed after
  /// `partition_duration_s` seconds.  Empty disables the partition.
  std::vector<std::string> partition_nodes;
  double partition_start_s = 1.0;
  double partition_duration_s = 5.0;

  bool enabled() const {
    return sm_churn || ge_loss || !partition_nodes.empty();
  }
};

struct TwoPartyOptions {
  int sm_count = 1;          ///< service managers (publishers), actor0
  int su_count = 1;          ///< service users (requesters), actor1
  int scm_count = 0;         ///< cache managers, actor2 (3-party/hybrid)
  int environment_count = 4; ///< non-acting load nodes
  int replications = 10;
  double deadline_s = 30.0;  ///< SU search deadline (Fig. 10 uses 30 s)
  std::uint64_t seed = 1;
  std::string service_type = "_expservice._udp";
  std::string protocol = "mdns";      ///< mdns | slp | hybrid
  std::string architecture = "two-party";  ///< informative parameter

  /// Traffic-generation factors (Fig. 5/7); empty disables the env process.
  std::vector<std::int64_t> pairs_levels;  ///< e.g. {5, 20}
  std::vector<std::int64_t> bw_levels;     ///< kbit/s, e.g. {10, 50, 100}

  /// Message-loss factor: when non-empty, a manipulation process applies
  /// fault_message_loss with these probabilities on every SU node.
  std::vector<double> loss_levels;

  /// Extra wait inserted before the SU initialises and searches (after the
  /// publish wait).  Lets experiments place faults in the window between
  /// publication/registration and the search (e.g. killing the SCM before
  /// directed discovery starts).
  double su_start_delay_s = 0.0;

  /// Dynamic-world fault processes layered onto the scenario.
  DynamicWorldOptions dynamic;
};

/// Build the complete experiment description: actor processes per Fig. 9
/// (SM) and Fig. 10 (SU), optional SCM role, optional Fig. 7 environment
/// process, optional loss manipulation, factors and platform mapping.
/// Node names: SM0.., SU0.., SCM0.., ENV0.. (abstract == concrete).
Result<ExperimentDescription> two_party_sd(const TwoPartyOptions& options);

struct TopologyOptions {
  TopologyKind kind = TopologyKind::kFullMesh;
  net::LinkModel link;
  /// Chain: nodes are spread along the chain with SUs and SMs at opposite
  /// ends, separated by `chain_spacing` relay hops.
  int chain_spacing = 1;
  /// Random geometric: connection radius.
  double radius = 0.35;
  std::uint64_t seed = 7;
};

/// Build a simulator topology containing every node the description's
/// platform section names (in order), arranged per `options`.
Result<net::Topology> topology_for(const ExperimentDescription& description,
                                   const TopologyOptions& options = {});

}  // namespace excovery::core::scenario
