# Empty dependencies file for bench_fig05_factors.
# This may be replaced when dependencies are built.
