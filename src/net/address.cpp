#include "net/address.hpp"

#include "common/strings.hpp"

namespace excovery::net {

std::string Address::to_string() const {
  return strings::format("%u.%u.%u.%u", (raw_ >> 24) & 0xFF,
                         (raw_ >> 16) & 0xFF, (raw_ >> 8) & 0xFF, raw_ & 0xFF);
}

Result<Address> Address::parse(const std::string& text) {
  std::vector<std::string> parts = strings::split(text, '.');
  if (parts.size() != 4) {
    return err_invalid("bad address '" + text + "': expected a.b.c.d");
  }
  std::uint32_t raw = 0;
  for (const std::string& part : parts) {
    if (part.empty() || part.size() > 3) {
      return err_invalid("bad address octet '" + part + "'");
    }
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        return err_invalid("bad address octet '" + part + "'");
      }
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) return err_invalid("address octet out of range: " + part);
    raw = (raw << 8) | static_cast<std::uint32_t>(octet);
  }
  return Address(raw);
}

}  // namespace excovery::net
