// Unit tests for the two-party mDNS-style SD protocol.
#include <gtest/gtest.h>

#include "sd/mdns.hpp"
#include "sd/message.hpp"

namespace excovery::sd {
namespace {

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  // Declared before `agents`: destructors emit exit events into `events`.
  std::vector<std::pair<std::string, std::string>> events;  // (node, event:param)
  std::vector<std::unique_ptr<MdnsAgent>> agents;

  explicit Fixture(std::size_t nodes, const MdnsConfig& config = {})
      : network(scheduler, net::Topology::full_mesh(nodes), 1) {
    for (std::size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<MdnsAgent>(
          network, static_cast<net::NodeId>(i), config));
      std::string name = network.topology().node(static_cast<net::NodeId>(i)).name;
      agents.back()->set_event_sink(
          [this, name](std::string_view event, const Value& param) {
            events.emplace_back(name,
                                std::string(event) + ":" + param.to_text());
          });
    }
  }

  ServiceInstance instance(const std::string& name,
                           const std::string& type = "_t._udp") {
    ServiceInstance out;
    out.instance_name = name;
    out.type = type;
    out.port = 80;
    return out;
  }

  int count_event(const std::string& node, const std::string& tagged) {
    int n = 0;
    for (const auto& [en, ev] : events) {
      if (en == node && ev == tagged) ++n;
    }
    return n;
  }

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  }
};

// ---- message codec ----------------------------------------------------------

TEST(SdMessage, RoundTripAllFields) {
  SdMessage message;
  message.kind = MessageKind::kResponse;
  message.txn_id = 77;
  message.service_type = "_http._tcp";
  message.sender_name = "n3";
  message.lease_seconds = 60;
  ServiceRecord record;
  record.instance.instance_name = "printer";
  record.instance.type = "_http._tcp";
  record.instance.provider = net::Address(10, 0, 0, 9);
  record.instance.port = 631;
  record.instance.version = 4;
  record.instance.attributes["path"] = "/ipp";
  record.ttl_seconds = 120;
  message.records.push_back(record);
  message.known_answers.push_back({"other", 60});

  Result<SdMessage> back = decode(encode(message));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), message);
}

TEST(SdMessage, GarbageRejected) {
  EXPECT_FALSE(decode(Bytes{}).ok());
  EXPECT_FALSE(decode(Bytes{1, 2, 3}).ok());
  Bytes truncated = encode(SdMessage{});
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(decode(truncated).ok());
}

TEST(SdMessage, UnknownKindRejected) {
  Bytes data = encode(SdMessage{});
  data[3] = 99;  // kind byte
  EXPECT_FALSE(decode(data).ok());
}

// ---- lifecycle -----------------------------------------------------------------

TEST(MdnsAgent, InitEmitsDoneAfterStartupDelay) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  EXPECT_TRUE(fx.agents[0]->initialized());
  EXPECT_EQ(fx.count_event("n0", "sd_init_done:SU"), 0);  // not yet
  fx.run_for(0.1);
  EXPECT_EQ(fx.count_event("n0", "sd_init_done:SU"), 1);
}

TEST(MdnsAgent, DoubleInitRejected) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  EXPECT_FALSE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
}

TEST(MdnsAgent, ScmRoleUnsupported) {
  Fixture fx(1);
  EXPECT_FALSE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
}

TEST(MdnsAgent, ActionsBeforeInitRejected) {
  Fixture fx(1);
  EXPECT_FALSE(fx.agents[0]->start_search("_t._udp").ok());
  EXPECT_FALSE(fx.agents[0]->exit().ok());
  Fixture fx2(1);
  EXPECT_FALSE(fx2.agents[0]->stop_publish("x").ok());
}

TEST(MdnsAgent, ExitEmitsDoneAndResetsState) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.1);
  ASSERT_TRUE(fx.agents[0]->exit().ok());
  EXPECT_FALSE(fx.agents[0]->initialized());
  EXPECT_EQ(fx.count_event("n0", "sd_exit_done:"), 1);
  // Can rejoin after exit ("To participate again ... re-run init").
  EXPECT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
}

// ---- discovery ------------------------------------------------------------------

TEST(MdnsAgent, ActiveDiscoveryFindsPublishedService) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(2.0);  // probing (0.75 s) + announce
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(1.0);

  EXPECT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
  std::vector<ServiceInstance> found = fx.agents[1]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].instance_name, "svc");
  EXPECT_EQ(found[0].provider, fx.network.topology().node(0).address);
}

TEST(MdnsAgent, PassiveDiscoveryViaAnnouncements) {
  MdnsConfig quiet;
  quiet.query_interval_max = sim::SimDuration::from_seconds(60);
  Fixture fx(2, quiet);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  // Search starts BEFORE the publish: the announcement (not a response)
  // must be what delivers the discovery.
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(0.5);
  std::uint64_t queries_before =
      fx.agents[1]->counters().queries_sent;
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(1.5);
  EXPECT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
  EXPECT_GT(fx.agents[0]->counters().announces_sent, 0u);
  (void)queries_before;
}

TEST(MdnsAgent, CachedServiceReportedOnNewSearch) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  ASSERT_TRUE(fx.agents[1]->stop_search("_t._udp").ok());
  // New search: the cache still holds the record -> immediate add event.
  fx.events.clear();
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  EXPECT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
}

TEST(MdnsAgent, QueryBackoffIsExponential) {
  MdnsConfig config;
  config.probe_count = 0;
  Fixture fx(1, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_search("_t._udp").ok());
  // Queries at ~0.02-0.12, then +1, +2, +4, +8 s -> 5 queries within 16 s.
  fx.run_for(15.5);
  EXPECT_EQ(fx.agents[0]->counters().queries_sent, 5u);
}

TEST(MdnsAgent, StopSearchHaltsQuerying) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_search("_t._udp").ok());
  fx.run_for(1.5);
  std::uint64_t queries = fx.agents[0]->counters().queries_sent;
  ASSERT_TRUE(fx.agents[0]->stop_search("_t._udp").ok());
  fx.run_for(30.0);
  EXPECT_EQ(fx.agents[0]->counters().queries_sent, queries);
  EXPECT_EQ(fx.count_event("n0", "sd_stop_search:_t._udp"), 1);
  EXPECT_FALSE(fx.agents[0]->stop_search("_t._udp").ok());
}

TEST(MdnsAgent, KnownAnswerSuppressionQuietsResponders) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  // Long search: the SU keeps querying with the record cached; the SM must
  // suppress responses to known-answer queries.
  fx.run_for(30.0);
  EXPECT_GT(fx.agents[0]->counters().responses_suppressed, 0u);
  // The service stays cached the whole time (no flapping del/add).
  EXPECT_EQ(fx.count_event("n1", "sd_service_del:svc"), 0);
}

// ---- goodbye & TTL ------------------------------------------------------------------

TEST(MdnsAgent, GoodbyeTriggersServiceDel) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  ASSERT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);

  ASSERT_TRUE(fx.agents[0]->stop_publish("svc").ok());
  fx.run_for(0.5);
  EXPECT_EQ(fx.count_event("n1", "sd_service_del:svc"), 1);
  EXPECT_TRUE(fx.agents[1]->discovered("_t._udp").empty());
  EXPECT_GT(fx.agents[0]->counters().goodbyes_sent, 0u);
}

TEST(MdnsAgent, TtlExpiryRemovesSilentService) {
  MdnsConfig config;
  config.record_ttl_seconds = 5;
  Fixture fx(2, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  ASSERT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
  // Kill the SM abruptly (no goodbye) and silence further queries so the
  // record cannot refresh: the cache must expire it.
  ASSERT_TRUE(fx.agents[1]->stop_search("_t._udp").ok());
  fx.agents[0].reset();
  // Re-arm the search listener state by searching again; cached entry
  // reported, then expires.
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(20.0);
  EXPECT_GE(fx.count_event("n1", "sd_service_del:svc"), 1);
  EXPECT_TRUE(fx.agents[1]->discovered("_t._udp").empty());
}

// ---- probing & conflicts ----------------------------------------------------------------

TEST(MdnsAgent, ProbingPrecedesAnnouncement) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(0.3);  // probes at 0, 0.25; not yet announcing
  EXPECT_GT(fx.agents[0]->counters().probes_sent, 0u);
  EXPECT_EQ(fx.agents[0]->counters().announces_sent, 0u);
  fx.run_for(2.0);
  EXPECT_EQ(fx.agents[0]->counters().probes_sent, 3u);
  EXPECT_EQ(fx.agents[0]->counters().announces_sent, 2u);
}

TEST(MdnsAgent, NameConflictResolvedByRename) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  // First publisher establishes the name.
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(3.0);
  // Second publisher tries the same name: must detect and rename.
  ASSERT_TRUE(fx.agents[1]->start_publish(fx.instance("svc")).ok());
  fx.run_for(3.0);
  EXPECT_GT(fx.agents[1]->counters().conflicts_detected, 0u);

  ASSERT_TRUE(fx.agents[2]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  std::vector<ServiceInstance> found = fx.agents[2]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 2u);
  std::set<std::string> names;
  for (const ServiceInstance& instance : found) {
    names.insert(instance.instance_name);
  }
  EXPECT_TRUE(names.count("svc") == 1);
  EXPECT_TRUE(names.count("svc-2") == 1);
}

TEST(MdnsAgent, PublishRequiresManagerRole) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  EXPECT_FALSE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
}

TEST(MdnsAgent, DuplicatePublishRejected) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  EXPECT_FALSE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
}

// ---- update publication -------------------------------------------------------------------

TEST(MdnsAgent, UpdatePublicationBumpsVersionAndReannounces) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);

  ServiceInstance updated = fx.instance("svc");
  updated.attributes["color"] = "blue";
  ASSERT_TRUE(fx.agents[0]->update_publication(updated).ok());
  // sd_service_upd emitted on the SM before execution (§V).
  EXPECT_EQ(fx.count_event("n0", "sd_service_upd:svc"), 1);
  fx.run_for(3.0);
  // The SU sees the update too (new version replaces the cached record).
  EXPECT_EQ(fx.count_event("n1", "sd_service_upd:svc"), 1);
  std::vector<ServiceInstance> found = fx.agents[1]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attributes.at("color"), "blue");
  EXPECT_EQ(found[0].version, 2u);
}

TEST(MdnsAgent, UpdateOfUnpublishedRejected) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  EXPECT_FALSE(fx.agents[0]->update_publication(fx.instance("ghost")).ok());
}

// ---- request/response pairing ---------------------------------------------------------------

TEST(MdnsAgent, ResponsesEchoQueryTransactionIds) {
  MdnsConfig config;
  config.probe_count = 0;  // publish immediately so queries get responses
  Fixture fx(2, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  fx.run_for(3.0);  // announcements pass while the SU is not initialised
  // Fresh SU with an empty cache: its first query has no known answers, so
  // the SM must answer it (response solicited by the query's txn id).
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  fx.network.reset_run_state();  // clear captures, keep protocol state
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(0.5);

  // Find the query tx at n1 and the response rx at n1 with the same txn.
  std::optional<std::uint32_t> query_txn;
  std::optional<std::uint32_t> response_txn;
  for (const net::CapturedPacket& captured : fx.network.captures(1)) {
    Result<SdMessage> message = decode(captured.packet.payload);
    if (!message.ok()) continue;
    if (message.value().kind == MessageKind::kQuery &&
        captured.direction == net::Direction::kTransmit) {
      query_txn = message.value().txn_id;
    }
    if (message.value().kind == MessageKind::kResponse &&
        captured.direction == net::Direction::kReceive) {
      response_txn = message.value().txn_id;
    }
  }
  ASSERT_TRUE(query_txn.has_value());
  ASSERT_TRUE(response_txn.has_value());
  EXPECT_EQ(*query_txn, *response_txn);
}

}  // namespace
}  // namespace excovery::sd
