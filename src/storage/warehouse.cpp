#include "storage/warehouse.hpp"

#include <map>

#include "common/strings.hpp"

namespace excovery::storage {

Warehouse& Warehouse::ensure_schema() {
  if (schema_ready_) return *this;
  (void)db_.create_table(
      {"DimExperiment",
       {{"ExpKey", ValueType::kInt, false},
        {"ExperimentID", ValueType::kString, false},
        {"Name", ValueType::kString, false},
        {"EEVersion", ValueType::kString, false}}});
  (void)db_.create_table({"DimRun",
                          {{"RunKey", ValueType::kInt, false},
                           {"ExpKey", ValueType::kInt, false},
                           {"RunID", ValueType::kInt, false},
                           {"StartTime", ValueType::kDouble, false}}});
  (void)db_.create_table({"DimNode",
                          {{"NodeKey", ValueType::kInt, false},
                           {"NodeID", ValueType::kString, false}}});
  (void)db_.create_table({"DimEventType",
                          {{"TypeKey", ValueType::kInt, false},
                           {"EventType", ValueType::kString, false}}});
  (void)db_.create_table({"FactEvent",
                          {{"ExpKey", ValueType::kInt, false},
                           {"RunKey", ValueType::kInt, false},
                           {"NodeKey", ValueType::kInt, false},
                           {"TypeKey", ValueType::kInt, false},
                           {"CommonTime", ValueType::kDouble, false},
                           {"Parameter", ValueType::kString, true}}});
  schema_ready_ = true;
  return *this;
}

std::int64_t Warehouse::node_key(const std::string& node_id) {
  auto it = node_keys_.find(node_id);
  if (it != node_keys_.end()) return it->second;
  auto key = static_cast<std::int64_t>(node_keys_.size()) + 1;
  node_keys_.emplace(node_id, key);
  (void)db_.table("DimNode")->insert({Value{key}, Value{node_id}});
  return key;
}

std::int64_t Warehouse::type_key(const std::string& event_type) {
  auto it = type_keys_.find(event_type);
  if (it != type_keys_.end()) return it->second;
  auto key = static_cast<std::int64_t>(type_keys_.size()) + 1;
  type_keys_.emplace(event_type, key);
  (void)db_.table("DimEventType")->insert({Value{key}, Value{event_type}});
  return key;
}

Status Warehouse::add(const std::string& experiment_id,
                      const ExperimentPackage& package) {
  ensure_schema();
  if (exp_keys_.count(experiment_id) != 0) {
    return err_state("experiment '" + experiment_id +
                     "' already in the warehouse");
  }
  std::int64_t exp_key = next_exp_key_++;
  exp_keys_.emplace(experiment_id, exp_key);
  EXC_TRY(db_.table("DimExperiment")
              ->insert({Value{exp_key}, Value{experiment_id},
                        Value{package.experiment_name().value_or("")},
                        Value{package.ee_version().value_or("")}}));

  // Run dimension: start time from RunInfos (first per run id).
  EXC_ASSIGN_OR_RETURN(std::vector<RunInfoRow> infos, package.run_infos());
  std::map<std::int64_t, std::int64_t> run_keys;
  for (const RunInfoRow& info : infos) {
    if (run_keys.count(info.run_id) != 0) continue;
    std::int64_t run_key = next_run_key_++;
    run_keys.emplace(info.run_id, run_key);
    EXC_TRY(db_.table("DimRun")->insert({Value{run_key}, Value{exp_key},
                                         Value{info.run_id},
                                         Value{info.start_time}}));
  }

  EXC_ASSIGN_OR_RETURN(std::vector<EventRow> events, package.all_events());
  for (const EventRow& event : events) {
    auto run_it = run_keys.find(event.run_id);
    if (run_it == run_keys.end()) continue;  // event of an unknown run
    EXC_TRY(db_.table("FactEvent")
                ->insert({Value{exp_key}, Value{run_it->second},
                          Value{node_key(event.node_id)},
                          Value{type_key(event.event_type)},
                          Value{event.common_time}, Value{event.parameter}}));
  }
  return {};
}

std::size_t Warehouse::fact_count() const {
  const Table* facts = db_.table("FactEvent");
  return facts ? facts->row_count() : 0;
}

std::size_t Warehouse::experiment_count() const { return exp_keys_.size(); }

std::string Warehouse::rollup_by_type() const {
  // (exp_key, type_key) -> count, then resolve through the dimensions.
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> counts;
  const Table* facts = db_.table("FactEvent");
  if (!facts) return "";
  for (std::size_t r = 0; r < facts->row_count(); ++r) {
    RowView row = facts->row(r);
    counts[{row.as_int(0), row.as_int(3)}]++;
  }
  std::map<std::int64_t, std::string> experiments;
  const Table* dim_exp = db_.table("DimExperiment");
  for (std::size_t r = 0; r < dim_exp->row_count(); ++r) {
    RowView row = dim_exp->row(r);
    experiments[row.as_int(0)] = std::string(row.as_string(1));
  }
  std::map<std::int64_t, std::string> types;
  const Table* dim_type = db_.table("DimEventType");
  for (std::size_t r = 0; r < dim_type->row_count(); ++r) {
    RowView row = dim_type->row(r);
    types[row.as_int(0)] = std::string(row.as_string(1));
  }
  std::string out;
  for (const auto& [key, count] : counts) {
    out += strings::format("%s %s %zu\n", experiments[key.first].c_str(),
                           types[key.second].c_str(), count);
  }
  return out;
}

Result<double> Warehouse::mean_interval(const std::string& experiment_id,
                                        const std::string& from_type,
                                        const std::string& to_type) const {
  auto exp_it = exp_keys_.find(experiment_id);
  if (exp_it == exp_keys_.end()) {
    return err_not_found("experiment '" + experiment_id +
                         "' not in the warehouse");
  }
  auto from_it = type_keys_.find(from_type);
  auto to_it = type_keys_.find(to_type);
  if (from_it == type_keys_.end() || to_it == type_keys_.end()) {
    return err_not_found("event type not in the warehouse");
  }
  // First occurrence per run of each type.
  std::map<std::int64_t, double> from_time;
  std::map<std::int64_t, double> to_time;
  const Table* facts = db_.table("FactEvent");
  // Hash-indexed: only this experiment's facts are touched.
  for (const RowView& row : facts->select_equals("ExpKey",
                                                 Value{exp_it->second})) {
    std::int64_t run_key = row.as_int(1);
    std::int64_t type = row.as_int(3);
    double time = row.as_double(4);
    if (type == from_it->second) {
      auto [it, inserted] = from_time.try_emplace(run_key, time);
      if (!inserted && time < it->second) it->second = time;
    } else if (type == to_it->second) {
      auto [it, inserted] = to_time.try_emplace(run_key, time);
      if (!inserted && time < it->second) it->second = time;
    }
  }
  double total = 0;
  std::size_t count = 0;
  for (const auto& [run_key, start] : from_time) {
    auto it = to_time.find(run_key);
    if (it == to_time.end()) continue;
    total += it->second - start;
    ++count;
  }
  if (count == 0) return err_not_found("no run contains both event types");
  return total / static_cast<double>(count);
}

}  // namespace excovery::storage
