// Level-2 (intermediate) storage: raw, unconditioned measurement data.
//
// §IV-B5: "Each participating node has its own temporary storage for
// recorded data, organized into data belonging to single runs and data
// valid for the complete experiment.  Time synchronization measurements are
// stored on the experiment master.  Plugins have a separate storage
// location on the node where the custom measurements are done."
//
// Timestamps here are *local* node clock readings in integer nanoseconds;
// conditioning (conditioning.hpp) maps them onto the common time base.
// The store persists as a file-system hierarchy (one binary store per node
// plus one for the master) so that collection and resume-after-abort can
// pick it up, mirroring the prototype's "special hierarchy on a file
// system".
//
// Run extraction/merge (extract_run / merge_run) is the level-2 half of the
// run-parallel executor (DESIGN.md §10): worker replicas record into private
// stores, the master pulls each finished run out and splices it in at the
// position run-id order dictates, so the merged store is byte-identical to
// one produced by sequential execution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"

namespace excovery::storage {

/// A raw (unconditioned) event record on a node.
struct RawEvent {
  std::int64_t run_id = 0;
  std::int64_t local_time_ns = 0;
  std::string type;
  Value parameter;
};

/// A raw captured packet on a node.
struct RawPacket {
  std::int64_t run_id = 0;
  std::int64_t local_time_ns = 0;
  std::string src_node;
  Bytes data;
};

/// A named blob, run-scoped or experiment-scoped.
struct NamedBlob {
  std::int64_t run_id = -1;  ///< -1 = experiment-scoped
  std::string name;
  std::string content;
};

/// One flushed chunk of a node's log.  Run-scoped segments let
/// discard_run drop an aborted run's log lines and let merge_run splice a
/// run's lines in at the right position.
struct LogSegment {
  std::int64_t run_id = -1;  ///< -1 = experiment-scoped
  std::string text;
};

/// Everything one node recorded for a single run, in recording order.
struct RunNodeData {
  std::vector<RawEvent> events;
  std::vector<RawPacket> packets;
  std::vector<NamedBlob> blobs;
  std::vector<NamedBlob> plugin_data;
  std::vector<LogSegment> log_segments;

  bool empty() const noexcept {
    return events.empty() && packets.empty() && blobs.empty() &&
           plugin_data.empty() && log_segments.empty();
  }
};

/// Per-node temporary storage.
class NodeStore {
 public:
  void record_event(RawEvent event) { events_.push_back(std::move(event)); }
  void record_packet(RawPacket packet) {
    packets_.push_back(std::move(packet));
  }
  void add_run_blob(std::int64_t run_id, std::string name,
                    std::string content) {
    blobs_.push_back({run_id, std::move(name), std::move(content)});
  }
  void add_experiment_blob(std::string name, std::string content) {
    blobs_.push_back({-1, std::move(name), std::move(content)});
  }
  /// Add or replace an experiment-scoped blob by name.  Replacement keeps
  /// the original position, so a resumed experiment that re-takes the same
  /// measurement reproduces the blob order of an uninterrupted one.
  void set_experiment_blob(const std::string& name, std::string content);
  /// Plugin measurements live in their own location (§IV-B5).
  void add_plugin_measurement(std::int64_t run_id, std::string plugin,
                              std::string name, std::string content) {
    plugin_data_.push_back(
        {run_id, plugin + "/" + std::move(name), std::move(content)});
  }
  /// Append an experiment-scoped log chunk.
  void append_log(std::string text) {
    if (!text.empty()) log_segments_.push_back({-1, std::move(text)});
  }
  /// Append a run-scoped log chunk (flushed by the node at run exit).
  void append_run_log(std::int64_t run_id, std::string text) {
    if (!text.empty()) log_segments_.push_back({run_id, std::move(text)});
  }

  const std::vector<RawEvent>& events() const noexcept { return events_; }
  const std::vector<RawPacket>& packets() const noexcept { return packets_; }
  const std::vector<NamedBlob>& blobs() const noexcept { return blobs_; }
  const std::vector<NamedBlob>& plugin_data() const noexcept {
    return plugin_data_;
  }
  const std::vector<LogSegment>& log_segments() const noexcept {
    return log_segments_;
  }
  /// The node's full log, segments concatenated in order.
  std::string log() const;

  /// Drop data belonging to one run (used when an aborted run is re-done).
  void discard_run(std::int64_t run_id);

  /// Move out everything belonging to one run, preserving recording order.
  RunNodeData extract_run(std::int64_t run_id);
  /// Splice a run's data in where run-id order dictates: appended when this
  /// store holds nothing from a later run, otherwise inserted before the
  /// first element of the next run.
  void merge_run(std::int64_t run_id, RunNodeData data);

  void clear();

  Bytes serialize() const;
  static Result<NodeStore> deserialize(const Bytes& data);

 private:
  std::vector<RawEvent> events_;
  std::vector<RawPacket> packets_;
  std::vector<NamedBlob> blobs_;
  std::vector<NamedBlob> plugin_data_;
  std::vector<LogSegment> log_segments_;
};

/// Time-sync estimate for one (run, node), held by the master.
struct SyncMeasurement {
  std::int64_t run_id = 0;
  std::string node;
  std::int64_t offset_ns = 0;      ///< estimated local - reference offset
  std::int64_t run_start_ns = 0;   ///< reference-time start of the run
};

/// All level-2 data one run produced across every node plus the master's
/// sync measurements — the unit moved from a worker replica's store into
/// the master store.
struct RunData {
  std::int64_t run_id = 0;
  std::map<std::string, RunNodeData> nodes;
  std::vector<SyncMeasurement> syncs;
};

/// The complete level-2 store: per-node stores plus master-side data.
class Level2Store {
 public:
  NodeStore& node(const std::string& name) { return nodes_[name]; }
  const NodeStore* find_node(const std::string& name) const;
  std::vector<std::string> node_names() const;

  void add_sync(SyncMeasurement sync) { syncs_.push_back(std::move(sync)); }
  const std::vector<SyncMeasurement>& syncs() const noexcept { return syncs_; }
  /// Offset estimate for (run, node); 0 if not measured.
  std::int64_t offset_ns(std::int64_t run_id, const std::string& node) const;

  /// Runs that completed (collection only conditions complete runs; an
  /// aborted run is resumed, §VII).
  void mark_run_complete(std::int64_t run_id) {
    completed_runs_.push_back(run_id);
  }
  const std::vector<std::int64_t>& completed_runs() const noexcept {
    return completed_runs_;
  }
  bool run_complete(std::int64_t run_id) const;

  /// Drop all traces of a run on every node (resume of an aborted run).
  void discard_run(std::int64_t run_id);

  /// Move one run's data out of this store (a worker shard hands its run to
  /// the master this way).  Does not touch the completed-run markers.
  RunData extract_run(std::int64_t run_id);
  /// Splice a run's data in at the position ascending run-id order
  /// dictates on every node and in the sync list.
  void merge_run(RunData data);

  void clear();

  // ---- file-system hierarchy persistence -------------------------------
  /// Writes <dir>/nodes/<name>.store and <dir>/master.store.
  Status write_to_directory(const std::string& directory) const;
  static Result<Level2Store> load_from_directory(const std::string& directory);

 private:
  std::map<std::string, NodeStore> nodes_;
  std::vector<SyncMeasurement> syncs_;
  std::vector<std::int64_t> completed_runs_;
};

}  // namespace excovery::storage
