file(REMOVE_RECURSE
  "CMakeFiles/bench_case_responsiveness.dir/bench_case_responsiveness.cpp.o"
  "CMakeFiles/bench_case_responsiveness.dir/bench_case_responsiveness.cpp.o.d"
  "bench_case_responsiveness"
  "bench_case_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
