# Empty dependencies file for excovery_sd.
# This may be replaced when dependencies are built.
