// Unit tests for the hybrid (adaptive) SD architecture.
#include <gtest/gtest.h>

#include "sd/hybrid.hpp"

namespace excovery::sd {
namespace {

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  // Declared before `agents`: destructors emit exit events into `events`.
  std::vector<std::pair<std::string, std::string>> events;
  std::vector<std::unique_ptr<HybridAgent>> agents;

  explicit Fixture(std::size_t nodes, const HybridConfig& config = {})
      : network(scheduler, net::Topology::full_mesh(nodes), 1) {
    for (std::size_t i = 0; i < nodes; ++i) {
      agents.push_back(std::make_unique<HybridAgent>(
          network, static_cast<net::NodeId>(i), config));
      std::string name =
          network.topology().node(static_cast<net::NodeId>(i)).name;
      agents.back()->set_event_sink(
          [this, name](std::string_view event, const Value& param) {
            events.emplace_back(name,
                                std::string(event) + ":" + param.to_text());
          });
    }
  }

  ServiceInstance instance(const std::string& name) {
    ServiceInstance out;
    out.instance_name = name;
    out.type = "_t._udp";
    out.port = 80;
    return out;
  }

  int count_event(const std::string& node, const std::string& tagged) {
    int n = 0;
    for (const auto& [en, ev] : events) {
      if (en == node && ev == tagged) ++n;
    }
    return n;
  }

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  }
};

TEST(HybridAgent, SingleInitDoneFromTwoStacks) {
  Fixture fx(1);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.5);
  EXPECT_EQ(fx.count_event("n0", "sd_init_done:SU"), 1);
}

TEST(HybridAgent, TwoPartyOperationWithoutScm) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.3);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  // Discovered via mDNS; exactly one add despite two stacks.
  EXPECT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
  EXPECT_FALSE(fx.agents[1]->directed_mode());
}

TEST(HybridAgent, SwitchesToDirectedModeWhenScmAppears) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.3);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(2.0);
  EXPECT_FALSE(fx.agents[1]->directed_mode());

  // SCM joins: agents emit scm_found and switch to directed discovery.
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(8.0);
  EXPECT_GE(fx.count_event("n1", "scm_found:n2"), 1);
  EXPECT_TRUE(fx.agents[1]->directed_mode());
  ASSERT_TRUE(fx.agents[1]->known_scm().has_value());
  // The SM registered with the SCM once it appeared.
  EXPECT_GE(fx.count_event("n2", "scm_registration_add:n0"), 1);
  // Still exactly one sd_service_add for the instance (dedup across
  // stacks).
  EXPECT_EQ(fx.count_event("n1", "sd_service_add:svc"), 1);
}

TEST(HybridAgent, FallsBackToTwoPartyOnScmLoss) {
  HybridConfig config;
  config.slp.scm_timeout = sim::SimDuration::from_seconds(8);
  Fixture fx(4, config);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(3.0);
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  ASSERT_TRUE(fx.agents[1]->directed_mode());

  // SCM dies silently; the watchdog must re-enable mDNS search.
  fx.agents[2].reset();
  fx.run_for(25.0);
  EXPECT_FALSE(fx.agents[1]->directed_mode());

  // Two-party discovery still works: a late publisher is found via mDNS.
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("late")).ok());
  fx.run_for(5.0);
  EXPECT_EQ(fx.count_event("n1", "sd_service_add:late"), 1);
}

TEST(HybridAgent, ScmRoleDelegatesToSlpOnly) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(0.5);
  EXPECT_EQ(fx.count_event("n0", "scm_started:n0"), 1);
  EXPECT_EQ(fx.count_event("n0", "sd_init_done:SCM"), 1);
  EXPECT_EQ(fx.agents[0]->mdns(), nullptr);
  EXPECT_FALSE(fx.agents[0]->start_search("_t._udp").ok());
}

TEST(HybridAgent, DiscoveredMergesBothCaches) {
  Fixture fx(3);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  ASSERT_TRUE(fx.agents[2]->init(SdRole::kServiceCacheManager, {}).ok());
  fx.run_for(3.0);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(5.0);
  std::vector<ServiceInstance> found = fx.agents[1]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);  // merged, not duplicated
  EXPECT_EQ(found[0].instance_name, "svc");
}

TEST(HybridAgent, StopSearchAndExitCleanUpBothStacks) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.3);
  ASSERT_TRUE(fx.agents[0]->start_search("_t._udp").ok());
  EXPECT_FALSE(fx.agents[0]->start_search("_t._udp").ok());  // duplicate
  ASSERT_TRUE(fx.agents[0]->stop_search("_t._udp").ok());
  EXPECT_FALSE(fx.agents[0]->stop_search("_t._udp").ok());
  ASSERT_TRUE(fx.agents[0]->exit().ok());
  EXPECT_EQ(fx.count_event("n0", "sd_exit_done:"), 1);
  EXPECT_FALSE(fx.agents[0]->initialized());
}

TEST(HybridAgent, PublishLifecycleEventsOnceEach) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.3);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  EXPECT_EQ(fx.count_event("n0", "sd_start_publish:svc"), 1);
  fx.run_for(2.0);
  ASSERT_TRUE(fx.agents[0]->stop_publish("svc").ok());
  EXPECT_EQ(fx.count_event("n0", "sd_stop_publish:svc"), 1);
  EXPECT_FALSE(fx.agents[0]->stop_publish("svc").ok());
}

TEST(HybridAgent, UpdatePublicationPropagates) {
  Fixture fx(2);
  ASSERT_TRUE(fx.agents[0]->init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(fx.agents[1]->init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.3);
  ASSERT_TRUE(fx.agents[0]->start_publish(fx.instance("svc")).ok());
  ASSERT_TRUE(fx.agents[1]->start_search("_t._udp").ok());
  fx.run_for(3.0);
  ServiceInstance updated = fx.instance("svc");
  updated.attributes["rev"] = "b";
  ASSERT_TRUE(fx.agents[0]->update_publication(updated).ok());
  EXPECT_GE(fx.count_event("n0", "sd_service_upd:svc"), 1);
  fx.run_for(3.0);
  std::vector<ServiceInstance> found = fx.agents[1]->discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].attributes.at("rev"), "b");
}

}  // namespace
}  // namespace excovery::sd
