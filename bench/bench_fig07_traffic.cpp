// Fig. 7 — "Illustrative example of environment process for traffic
// generation": ready_to_init flag, env_traffic_start wired to the factors
// of Fig. 5 (bw, pairs, replication-seeded switching), wait for done,
// env_traffic_stop.
//
// Regenerated from running code: the environment process executes against
// the simulator for each (pairs, bw) treatment; the bench reports offered
// vs delivered load per treatment and verifies the per-run pair switching.
#include "bench_common.hpp"
#include "faults/traffic.hpp"

using namespace excovery;

int main() {
  bench::banner("bench_fig07_traffic",
                "Fig. 7: environment process for traffic generation");

  core::scenario::TwoPartyOptions options;
  options.replications = 4;
  options.environment_count = 6;
  options.pairs_levels = {2, 5};
  options.bw_levels = {10, 50, 100};
  options.deadline_s = 10.0;

  core::ExperimentDescription description = bench::must(
      core::scenario::two_party_sd(options), "description");
  // Print the generated env process as XML (the Fig. 7 listing).
  std::string xml_text = description.to_xml_text();
  std::size_t start = xml_text.find("<env_process>");
  std::size_t end = xml_text.find("</env_process>");
  if (start != std::string::npos && end != std::string::npos) {
    std::printf("\n%s</env_process>\n",
                xml_text.substr(start, end - start).c_str());
  }

  net::Topology topology = bench::must(
      core::scenario::topology_for(description, {}), "topology");
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 5;
  std::unique_ptr<core::SimPlatform> platform = bench::must(
      core::SimPlatform::create(description, std::move(config)), "platform");
  core::ExperiMaster master(description, *platform);

  std::printf("\n%-6s %-6s %-6s  %-10s %-10s %-10s\n", "run", "pairs", "bw",
              "offered", "delivered", "loss%");
  faults::TrafficGenerator& traffic = platform->traffic();
  std::uint64_t offered_before = 0;
  std::uint64_t delivered_before = 0;
  for (const core::RunSpec& run : master.plan().runs()) {
    Status status = master.execute_run(run);
    if (!status.ok()) {
      std::fprintf(stderr, "run %lld: %s\n",
                   static_cast<long long>(run.run_id),
                   status.error().to_string().c_str());
      return 1;
    }
    std::uint64_t offered = traffic.packets_offered() - offered_before;
    std::uint64_t delivered = traffic.packets_delivered() - delivered_before;
    offered_before = traffic.packets_offered();
    delivered_before = traffic.packets_delivered();
    double loss = offered > 0
                      ? 100.0 * static_cast<double>(offered - delivered) /
                            static_cast<double>(offered)
                      : 0.0;
    std::printf("%-6lld %-6lld %-6lld  %-10llu %-10llu %5.1f\n",
                static_cast<long long>(run.run_id),
                static_cast<long long>(
                    run.treatment.level_int("fact_pairs").value_or(0)),
                static_cast<long long>(
                    run.treatment.level_int("fact_bw").value_or(0)),
                static_cast<unsigned long long>(offered),
                static_cast<unsigned long long>(delivered), loss);
  }

  std::printf(
      "\nshape check: offered load scales with bw x pairs; the pair set\n"
      "switches one pair per run (random_switch_amount=1, seeded by the\n"
      "replication id) exactly as the Fig. 7 listing configures.\n");
  return 0;
}
