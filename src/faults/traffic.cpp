#include "faults/traffic.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace excovery::faults {

Result<PairChoice> parse_pair_choice(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(strings::strip_quotes(text)));
  if (t == "0" || t == "acting") return PairChoice::kActing;
  if (t == "1" || t == "nonacting" || t == "non-acting" || t == "environment") {
    return PairChoice::kNonActing;
  }
  if (t == "2" || t == "all") return PairChoice::kAll;
  return err_invalid("unknown pair choice '" + text + "'");
}

namespace {

NodePair ordered(net::NodeId a, net::NodeId b) {
  return a < b ? NodePair{a, b} : NodePair{b, a};
}

bool contains(const std::vector<NodePair>& pairs, const NodePair& p) {
  return std::find(pairs.begin(), pairs.end(), p) != pairs.end();
}

/// Draw one pair not already in `existing`; returns invalid pair when the
/// space is exhausted.
NodePair draw_fresh(Pcg32& rng, const std::vector<net::NodeId>& candidates,
                    const std::vector<NodePair>& existing) {
  std::size_t n = candidates.size();
  std::size_t max_pairs = n * (n - 1) / 2;
  if (existing.size() >= max_pairs) return {};
  for (;;) {
    auto i = static_cast<std::size_t>(rng.bounded(static_cast<std::uint32_t>(n)));
    auto j = static_cast<std::size_t>(
        rng.bounded(static_cast<std::uint32_t>(n - 1)));
    if (j >= i) ++j;
    NodePair p = ordered(candidates[i], candidates[j]);
    if (!contains(existing, p)) return p;
  }
}

}  // namespace

Result<std::vector<NodePair>> select_pairs(
    const std::vector<net::NodeId>& candidates, int count,
    std::uint64_t seed) {
  if (count < 0) return err_invalid("pair count must be non-negative");
  std::size_t n = candidates.size();
  std::size_t max_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  if (static_cast<std::size_t>(count) > max_pairs) {
    return err_invalid(strings::format(
        "cannot select %d distinct pairs from %zu candidates", count, n));
  }
  Pcg32 rng = RngFactory(seed).stream("traffic-pairs");
  std::vector<NodePair> out;
  out.reserve(static_cast<std::size_t>(count));
  while (out.size() < static_cast<std::size_t>(count)) {
    out.push_back(draw_fresh(rng, candidates, out));
  }
  return out;
}

std::vector<NodePair> switch_pairs(std::vector<NodePair> current,
                                   const std::vector<net::NodeId>& candidates,
                                   int amount, std::uint64_t seed,
                                   std::uint64_t run_index) {
  if (amount <= 0 || current.empty() || candidates.size() < 2) return current;
  Pcg32 rng = RngFactory(seed).stream("traffic-switch", run_index);
  int to_switch = std::min<int>(amount, static_cast<int>(current.size()));
  for (int i = 0; i < to_switch; ++i) {
    auto victim = static_cast<std::size_t>(
        rng.bounded(static_cast<std::uint32_t>(current.size())));
    NodePair fresh = draw_fresh(rng, candidates, current);
    if (fresh.a == net::kInvalidNode) break;  // pair space exhausted
    current[victim] = fresh;
  }
  return current;
}

TrafficGenerator::TrafficGenerator(net::Network& network)
    : network_(network) {}

TrafficGenerator::~TrafficGenerator() { stop(); }

Status TrafficGenerator::start(const TrafficConfig& config,
                               const std::vector<net::NodeId>& acting,
                               const std::vector<net::NodeId>& environment,
                               std::uint64_t run_index) {
  if (running_) return err_state("traffic generator already running");
  std::vector<net::NodeId> candidates;
  switch (config.choice) {
    case PairChoice::kActing:
      candidates = acting;
      break;
    case PairChoice::kNonActing:
      candidates = environment;
      break;
    case PairChoice::kAll:
      candidates = acting;
      candidates.insert(candidates.end(), environment.begin(),
                        environment.end());
      break;
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  EXC_ASSIGN_OR_RETURN(
      pairs_, select_pairs(candidates, config.pairs, config.pair_seed));
  pairs_ = switch_pairs(std::move(pairs_), candidates, config.switch_amount,
                        config.switch_seed, run_index);
  config_ = config;
  running_ = true;
  generation_.bump();

  // Bind receive handlers that count deliveries (idempotent per node).
  auto bind_counter = [this](net::NodeId node) {
    if (std::find(bound_.begin(), bound_.end(), node) != bound_.end()) return;
    bound_.push_back(node);
    network_.bind(node, net::kTrafficPort,
                  [this](net::NodeId, const net::Packet&) { ++delivered_; });
  };

  double rate_bps = config.rate_kbps * 1000.0;
  double interval_s =
      rate_bps > 0
          ? static_cast<double>(config.payload_bytes) * 8.0 / rate_bps
          : 0.0;
  if (interval_s <= 0.0) return err_invalid("traffic rate must be positive");
  sim::SimDuration interval = sim::SimDuration::from_seconds(interval_s);

  flows_.clear();
  for (const NodePair& pair : pairs_) {
    bind_counter(pair.a);
    bind_counter(pair.b);
    flows_.push_back(Flow{pair.a, pair.b, interval});
    flows_.push_back(Flow{pair.b, pair.a, interval});
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) schedule_next(i);
  return {};
}

void TrafficGenerator::schedule_next(std::size_t flow_index) {
  const Flow& flow = flows_[flow_index];
  std::uint64_t generation = generation_.value();
  network_.scheduler().schedule(
      flow.interval,
      [this, alive = generation_.token(), flow_index, generation] {
    // Gate first: `running_` may only be read once the generator is known
    // alive (stop() and the destructor bump the gate before teardown).
    if (*alive != generation || !running_) return;
    const Flow& f = flows_[flow_index];
    net::Packet packet;
    packet.dst = network_.topology().node(f.to).address;
    packet.src_port = net::kTrafficPort;
    packet.dst_port = net::kTrafficPort;
    packet.payload.assign(config_.payload_bytes, 0xAB);
    ++offered_;
    (void)network_.send(f.from, std::move(packet));
    schedule_next(flow_index);
  });
}

void TrafficGenerator::stop() {
  if (!running_) return;
  running_ = false;
  generation_.bump();
  for (net::NodeId node : bound_) network_.unbind(node, net::kTrafficPort);
  bound_.clear();
  flows_.clear();
}

}  // namespace excovery::faults
