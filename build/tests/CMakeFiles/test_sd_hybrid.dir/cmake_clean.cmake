file(REMOVE_RECURSE
  "CMakeFiles/test_sd_hybrid.dir/sd_hybrid_test.cpp.o"
  "CMakeFiles/test_sd_hybrid.dir/sd_hybrid_test.cpp.o.d"
  "test_sd_hybrid"
  "test_sd_hybrid.pdb"
  "test_sd_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
