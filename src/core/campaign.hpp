// Campaign runner: execute many independent experiments in parallel.
//
// *Experiments* — different descriptions, seeds, topologies — are pure
// functions of their inputs (DESIGN.md §6).  The campaign runner fans a
// list of experiment configurations out over a thread pool and collects
// the conditioned packages in input order, bit-identical to sequential
// execution.  Runs *within* one experiment can additionally execute in
// parallel (MasterOptions::run_workers, DESIGN.md §10); the campaign
// points every entry's master at the campaign pool, so the two levels of
// parallelism share one set of threads instead of multiplying: a master's
// extra run workers are pool tasks, its own (pool) thread always
// participates in the run work, and it never blocks waiting for helpers to
// be scheduled — which is what makes the nesting deadlock-free even when
// every entry requests run workers on a saturated pool.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/description.hpp"
#include "core/master.hpp"
#include "core/platform.hpp"
#include "storage/package.hpp"
#include "storage/repository.hpp"

namespace excovery::core {

/// One experiment of a campaign.
struct CampaignEntry {
  std::string id;  ///< unique id (also the repository key, if archiving)
  ExperimentDescription description;
  SimPlatformConfig platform;   ///< topology + seed for this experiment
  MasterOptions master;
};

struct CampaignOutcome {
  std::string id;
  Result<storage::ExperimentPackage> package;

  CampaignOutcome(std::string id_, Result<storage::ExperimentPackage> p)
      : id(std::move(id_)), package(std::move(p)) {}
};

struct CampaignOptions {
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  /// When set, every successful package is stored under its entry id.
  storage::Repository* archive = nullptr;
  /// Progress callback, invoked as entries finish (completion order).
  /// Invocations are serialized by the campaign runner, so stateful
  /// callbacks need no locking of their own.
  std::function<void(const std::string& id, bool ok)> progress;
};

/// Execute all entries; outcomes are returned in input order.  Individual
/// failures do not stop the campaign.  Archiving (when requested) happens
/// on the calling thread after all entries finished.
std::vector<CampaignOutcome> run_campaign(std::vector<CampaignEntry> entries,
                                          const CampaignOptions& options = {});

}  // namespace excovery::core
