// RPC endpoints: server-side method registry and client-side proxy, plus an
// in-process transport.
//
// §VI-A: "Master and nodes are connected in a centralized client-server
// architecture with a dedicated communication channel ... A node object
// presents the functions of one node to the master program via XML-RPC and
// uses locking to allow only one access at a time."
//
// The transport abstraction is the seam between ExCovery and the platform:
// the in-process transport models the DES testbed's dedicated wired control
// network (separate, reliable, non-interfering, §IV-A1).  Requests round-
// trip through the full XML-RPC encode/decode path so the codec is genuinely
// on the control path, as in the prototype.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "rpc/codec.hpp"

namespace excovery::rpc {

/// Server-side registry of callable methods.  Dispatch is serialised by a
/// per-server mutex (the prototype's node-object locking).
class RpcServer {
 public:
  using Method = std::function<Result<Value>(const ValueArray& params)>;

  /// Register a method; replaces any previous registration of that name.
  void register_method(std::string name, Method method);
  bool has_method(const std::string& name) const;
  std::size_t method_count() const;

  /// Decode request text, dispatch, encode response text.  Transport-level
  /// errors (undecodable request) surface as Result errors; application
  /// errors travel inside the response as XML-RPC faults.
  Result<std::string> handle(const std::string& request_xml);

  /// Dispatch an already-decoded call (used by tests and direct callers).
  MethodResponse dispatch(const MethodCall& call);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Method> methods_;
};

/// Transport interface: move request text to a named server, return its
/// response text.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::string> round_trip(const std::string& endpoint,
                                         const std::string& request_xml) = 0;
};

/// In-process transport: a registry of servers by endpoint name.
class InProcessTransport final : public Transport {
 public:
  /// Attach a server under an endpoint name.  The server must outlive the
  /// transport registration (unregister before destroying it).
  void attach(const std::string& endpoint, RpcServer* server);
  void detach(const std::string& endpoint);
  std::size_t endpoint_count() const;

  Result<std::string> round_trip(const std::string& endpoint,
                                 const std::string& request_xml) override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, RpcServer*> servers_;
};

/// Client-side proxy bound to one endpoint.
class RpcClient {
 public:
  RpcClient(Transport& transport, std::string endpoint)
      : transport_(&transport), endpoint_(std::move(endpoint)) {}

  const std::string& endpoint() const noexcept { return endpoint_; }

  /// Invoke a remote method.  Faults map to kRpc errors carrying the fault
  /// string.
  Result<Value> call(const std::string& method, ValueArray params = {});

 private:
  Transport* transport_;
  std::string endpoint_;
};

}  // namespace excovery::rpc
