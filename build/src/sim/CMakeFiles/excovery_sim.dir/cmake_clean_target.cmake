file(REMOVE_RECURSE
  "libexcovery_sim.a"
)
