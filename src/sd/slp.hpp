// Three-party (centralised) SD protocol in the style of SLP with a
// directory agent — the SCM of the paper's general SD model (§III).
//
// Roles:
//  * SCM (directory agent): announces itself with multicast adverts
//    (heartbeat) and answers multicast SCM-discovery queries with unicast
//    adverts; holds service registrations with leases; emits
//    scm_started / scm_registration_{add,upd,del}.
//  * SM (service agent): discovers an SCM (active multicast query with
//    back-off, or passively via heartbeats), emits scm_found, then
//    registers its services unicast with a lease and renews at half-lease.
//  * SU (user agent): discovers an SCM the same way, then performs
//    *directed discovery* — unicast queries to the SCM, polled while a
//    search is active; results populate the local cache which emits
//    sd_service_add / sd_service_del.
//
// All timers and random delays are deterministic in the config seed.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/lifetime.hpp"
#include "sd/cache.hpp"
#include "sd/message.hpp"
#include "sd/model.hpp"

namespace excovery::sd {

struct SlpConfig {
  sim::SimDuration startup_delay = sim::SimDuration::from_millis(50);

  /// SCM heartbeat advert period.
  sim::SimDuration advert_interval = sim::SimDuration::from_seconds(5);
  /// SCM discovery query schedule (SM/SU side).
  sim::SimDuration scm_query_interval = sim::SimDuration::from_millis(1000);
  double scm_query_backoff = 2.0;
  sim::SimDuration scm_query_interval_max =
      sim::SimDuration::from_seconds(30);

  /// Registration lease granted by the SCM; SMs renew at half-lease.
  std::uint32_t lease_seconds = 60;
  /// SU poll period while a search is active.
  sim::SimDuration poll_interval = sim::SimDuration::from_seconds(2);
  /// If no advert is heard for this long, the SCM is presumed gone.
  sim::SimDuration scm_timeout = sim::SimDuration::from_seconds(12);

  std::uint32_t record_ttl_seconds = 120;
  std::uint8_t multicast_ttl = 32;
  std::uint64_t seed = 0;
};

class SlpAgent final : public SdAgent {
 public:
  SlpAgent(net::Network& network, net::NodeId node,
           const SlpConfig& config = {});
  ~SlpAgent() override;

  SlpAgent(const SlpAgent&) = delete;
  SlpAgent& operator=(const SlpAgent&) = delete;

  Status init(SdRole role, const ValueMap& params) override;
  Status exit() override;
  void crash() override;
  Status start_search(const ServiceType& type) override;
  Status stop_search(const ServiceType& type) override;
  Status start_publish(const ServiceInstance& instance) override;
  Status stop_publish(const std::string& instance_name) override;
  Status update_publication(const ServiceInstance& instance) override;

  std::vector<ServiceInstance> discovered(
      const ServiceType& type) const override;
  bool initialized() const override { return initialized_; }
  SdRole role() const override { return role_; }

  /// Address of the SCM currently known to this agent (SU/SM side).
  std::optional<net::Address> known_scm() const noexcept { return scm_; }

  /// SCM side: number of live registrations.
  std::size_t registration_count() const noexcept {
    return registrations_.size();
  }

  struct Counters {
    std::uint64_t scm_queries_sent = 0;
    std::uint64_t adverts_sent = 0;
    std::uint64_t registers_sent = 0;
    std::uint64_t renewals_sent = 0;
    std::uint64_t directed_queries_sent = 0;
    std::uint64_t directed_replies_sent = 0;
    std::uint64_t registrations_expired = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  struct Registration {       // SCM-side state per instance
    ServiceRecord record;
    std::string owner;        // registering SM name
    sim::SimTime lease_expires;
    std::uint64_t lineage = 0;  ///< causal event of the registering packet
  };
  struct Publication {        // SM-side state per instance
    ServiceInstance instance;
    bool registered = false;
  };
  struct Search {
    ServiceType type;
    sim::TimerHandle poll_timer;
    std::uint32_t round = 0;  ///< directed-poll rounds (lineage attribution)
  };

  void on_packet(const net::Packet& packet);
  // SCM side
  void handle_scm_query(const SdMessage& message, net::Address from);
  void handle_register(const SdMessage& message, net::Address from);
  void handle_deregister(const SdMessage& message);
  void handle_directed_query(const SdMessage& message, net::Address from);
  void advert_heartbeat();
  void expire_registrations();
  // SM/SU side
  void handle_scm_advert(const SdMessage& message, net::Address from);
  void handle_directed_reply(const SdMessage& message);
  void send_scm_query();
  void schedule_scm_query(sim::SimDuration delay);
  void register_publication(const std::string& instance_name);
  void schedule_renewal(const std::string& instance_name);
  void poll_scm(const ServiceType& type);
  void scm_lost();

  void send_multicast(const SdMessage& message);
  void send_unicast(net::Address to, const SdMessage& message);
  std::uint32_t next_txn() { return next_txn_id_++; }

  template <typename Fn>
  void schedule(sim::SimDuration delay, Fn&& fn);

  net::Network& network_;
  net::NodeId node_;
  SlpConfig config_;
  Pcg32 rng_;
  ServiceCache cache_;

  bool initialized_ = false;
  SdRole role_ = SdRole::kServiceUser;
  sim::GenerationGate generation_;
  std::uint32_t next_txn_id_ = 1;

  // SU/SM side
  std::optional<net::Address> scm_;
  sim::SimTime last_advert_;
  sim::SimDuration scm_query_interval_current_;
  std::map<std::string, Publication> published_;
  std::map<ServiceType, Search> searches_;

  // SCM side
  std::map<std::string, Registration> registrations_;

  Counters counters_;
};

}  // namespace excovery::sd
