#include "storage/table.hpp"

#include <algorithm>

namespace excovery::storage {

std::optional<std::size_t> TableSchema::column_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return std::nullopt;
}

Status Table::insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return err_invalid("table '" + schema_.name + "': row arity " +
                       std::to_string(row.size()) + " != " +
                       std::to_string(schema_.columns.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Column& column = schema_.columns[i];
    if (row[i].is_null()) {
      if (!column.nullable) {
        return err_invalid("table '" + schema_.name + "': column '" +
                           column.name + "' is not nullable");
      }
      continue;
    }
    // Int is acceptable where double is declared (numeric widening).
    if (row[i].type() != column.type &&
        !(column.type == ValueType::kDouble && row[i].is_int())) {
      return err_invalid(
          "table '" + schema_.name + "': column '" + column.name +
          "' expects " + std::string(to_string(column.type)) + ", got " +
          std::string(to_string(row[i].type())));
    }
  }
  rows_.push_back(std::move(row));
  return {};
}

std::vector<const Row*> Table::select(const RowPredicate& predicate) const {
  std::vector<const Row*> out;
  for (const Row& row : rows_) {
    if (predicate(row)) out.push_back(&row);
  }
  return out;
}

std::vector<const Row*> Table::select_equals(std::string_view column,
                                             const Value& value) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) return {};
  std::vector<const Row*> out;
  for (const Row& row : rows_) {
    if (row[*index] == value) out.push_back(&row);
  }
  return out;
}

Result<std::vector<const Row*>> Table::order_by(std::string_view column) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) {
    return err_not_found("table '" + schema_.name + "' has no column '" +
                         std::string(column) + "'");
  }
  std::vector<const Row*> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(&row);
  std::stable_sort(out.begin(), out.end(),
                   [i = *index](const Row* a, const Row* b) {
                     return (*a)[i] < (*b)[i];
                   });
  return out;
}

std::size_t Table::count_equals(std::string_view column,
                                const Value& value) const {
  return select_equals(column, value).size();
}

Result<Value> Table::cell(const Row& row, std::string_view column) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) {
    return err_not_found("table '" + schema_.name + "' has no column '" +
                         std::string(column) + "'");
  }
  if (*index >= row.size()) return err_internal("row shorter than schema");
  return row[*index];
}

}  // namespace excovery::storage
