#include "storage/database.hpp"

#include <cstdio>
#include <memory>

#include "common/bytes.hpp"

namespace excovery::storage {

namespace {
constexpr std::uint32_t kMagic = 0x45584342;  // "EXCB"
// Version 1: cell-by-cell tagged Values, row major (read-only legacy).
// Version 2: columnar blocks with a per-table interned-string dictionary.
constexpr std::uint16_t kLegacyFormatVersion = 1;
constexpr std::uint16_t kFormatVersion = 2;
}  // namespace

Result<Table*> Database::create_table(TableSchema schema) {
  if (tables_.find(schema.name) != tables_.end()) {
    return err_state("table '" + schema.name + "' already exists");
  }
  if (schema.columns.empty()) {
    return err_invalid("table '" + schema.name + "' needs columns");
  }
  std::string name = schema.name;
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  order_.push_back(std::move(name));
  return raw;
}

Table* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Database::require_table(const std::string& name) {
  Table* t = table(name);
  if (!t) return err_not_found("no table '" + name + "'");
  return t;
}

std::vector<std::string> Database::table_names() const { return order_; }

std::string Database::schema_description() const {
  std::string out;
  for (const std::string& name : order_) {
    const Table* t = table(name);
    out += name;
    out += " | ";
    bool first = true;
    for (const Column& column : t->schema().columns) {
      if (!first) out += ", ";
      first = false;
      out += column.name;
    }
    out += "\n";
  }
  return out;
}

Bytes Database::serialize() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u16(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (const std::string& name : order_) {
    const Table* t = table(name);
    w.string(name);
    w.u16(static_cast<std::uint16_t>(t->schema().columns.size()));
    for (const Column& column : t->schema().columns) {
      w.string(column.name);
      w.u8(static_cast<std::uint8_t>(column.type));
      w.u8(column.nullable ? 1 : 0);
    }
    w.u64(t->row_count());
    t->serialize_columns(w);
  }
  return w.take();
}

namespace {

Result<TableSchema> read_schema(ByteReader& r) {
  TableSchema schema;
  EXC_ASSIGN_OR_RETURN(schema.name, r.string());
  EXC_ASSIGN_OR_RETURN(std::uint16_t column_count, r.u16());
  for (std::uint16_t c = 0; c < column_count; ++c) {
    Column column;
    EXC_ASSIGN_OR_RETURN(column.name, r.string());
    EXC_ASSIGN_OR_RETURN(std::uint8_t type, r.u8());
    column.type = static_cast<ValueType>(type);
    EXC_ASSIGN_OR_RETURN(std::uint8_t nullable, r.u8());
    column.nullable = nullable != 0;
    schema.columns.push_back(std::move(column));
  }
  return schema;
}

/// Version-1 packages store every cell as a tagged Value, row by row; read
/// them through the checked insert path.
Status read_legacy_rows(ByteReader& r, Table* t, std::uint64_t row_count,
                        std::size_t arity) {
  for (std::uint64_t row_i = 0; row_i < row_count; ++row_i) {
    Row row;
    row.reserve(arity);
    for (std::size_t c = 0; c < arity; ++c) {
      EXC_ASSIGN_OR_RETURN(Value cell, r.value());
      row.push_back(std::move(cell));
    }
    EXC_TRY(t->insert(std::move(row)));
  }
  return {};
}

}  // namespace

Result<Database> Database::deserialize(const Bytes& data) {
  ByteReader r(data);
  EXC_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  if (magic != kMagic) return err_io("not an ExCovery database file");
  EXC_ASSIGN_OR_RETURN(std::uint16_t version, r.u16());
  if (version != kFormatVersion && version != kLegacyFormatVersion) {
    return err_io("unsupported database format version " +
                  std::to_string(version));
  }
  Database db;
  EXC_ASSIGN_OR_RETURN(std::uint32_t table_count, r.u32());
  for (std::uint32_t i = 0; i < table_count; ++i) {
    EXC_ASSIGN_OR_RETURN(TableSchema schema, read_schema(r));
    std::size_t arity = schema.columns.size();
    EXC_ASSIGN_OR_RETURN(Table * t, db.create_table(std::move(schema)));
    EXC_ASSIGN_OR_RETURN(std::uint64_t row_count, r.u64());
    if (version == kLegacyFormatVersion) {
      EXC_TRY(read_legacy_rows(r, t, row_count, arity));
    } else {
      EXC_TRY(t->deserialize_columns(r, row_count));
    }
  }
  return db;
}

Status Database::save(const std::string& path) const {
  Bytes data = serialize();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) return err_io("cannot open '" + path + "' for writing");
  std::size_t written = std::fwrite(data.data(), 1, data.size(), file);
  int close_rc = std::fclose(file);
  if (written != data.size() || close_rc != 0) {
    return err_io("short write to '" + path + "'");
  }
  return {};
}

Result<Database> Database::load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return err_io("cannot open '" + path + "' for reading");
  // Size the buffer once from the file length so a package load is a single
  // allocation and a single read; the chunked tail loop only runs if the
  // file grows between the seek and the read (or the size was unavailable).
  Bytes data;
  if (std::fseek(file, 0, SEEK_END) == 0) {
    long size = std::ftell(file);
    if (size > 0) data.reserve(static_cast<std::size_t>(size));
    std::rewind(file);
  }
  std::uint8_t buffer[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    data.insert(data.end(), buffer, buffer + n);
  }
  std::fclose(file);
  return deserialize(data);
}

}  // namespace excovery::storage
