#include "rpc/codec.hpp"

#include "common/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace excovery::rpc {

namespace {

// Minimal base64 for the <base64> scalar.
constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string base64_encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 2 < data.size()) {
    std::uint32_t triple = (static_cast<std::uint32_t>(data[i]) << 16) |
                           (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                           data[i + 2];
    out.push_back(kBase64Alphabet[(triple >> 18) & 0x3F]);
    out.push_back(kBase64Alphabet[(triple >> 12) & 0x3F]);
    out.push_back(kBase64Alphabet[(triple >> 6) & 0x3F]);
    out.push_back(kBase64Alphabet[triple & 0x3F]);
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[(v >> 18) & 0x3F]);
    out.push_back(kBase64Alphabet[(v >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kBase64Alphabet[(v >> 18) & 0x3F]);
    out.push_back(kBase64Alphabet[(v >> 12) & 0x3F]);
    out.push_back(kBase64Alphabet[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> base64_decode(const std::string& text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  Bytes out;
  std::uint32_t accum = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=' || c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    int v = value_of(c);
    if (v < 0) return err_parse(std::string("bad base64 character '") + c + "'");
    accum = (accum << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((accum >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace

void encode_value(const Value& value, xml::Element& parent) {
  xml::Element& holder = parent.add_child("value");
  switch (value.type()) {
    case ValueType::kNull:
      holder.add_child("nil");
      break;
    case ValueType::kBool:
      holder.add_text_child("boolean", value.as_bool() ? "1" : "0");
      break;
    case ValueType::kInt:
      // XML-RPC "int" is 32-bit; use the common i8 extension when needed.
      if (value.as_int() >= INT32_MIN && value.as_int() <= INT32_MAX) {
        holder.add_text_child("int", std::to_string(value.as_int()));
      } else {
        holder.add_text_child("i8", std::to_string(value.as_int()));
      }
      break;
    case ValueType::kDouble:
      holder.add_text_child("double", strings::format_double(value.as_double()));
      break;
    case ValueType::kString:
      holder.add_text_child("string", value.as_string());
      break;
    case ValueType::kBytes:
      holder.add_text_child("base64", base64_encode(value.as_bytes()));
      break;
    case ValueType::kArray: {
      xml::Element& data = holder.add_child("array").add_child("data");
      for (const Value& item : value.as_array()) encode_value(item, data);
      break;
    }
    case ValueType::kMap: {
      xml::Element& strct = holder.add_child("struct");
      for (const auto& [name, item] : value.as_map()) {
        xml::Element& member = strct.add_child("member");
        member.add_text_child("name", name);
        encode_value(item, member);
      }
      break;
    }
  }
}

Result<Value> decode_value(const xml::Element& value_element) {
  if (value_element.name() != "value") {
    return err_parse("expected <value>, got <" +
                     std::string(value_element.name()) + ">");
  }
  const xml::Element* typed_ptr = value_element.first_child();
  if (!typed_ptr) {
    // Bare text inside <value> is a string per the spec.
    return Value{value_element.text()};
  }
  const xml::Element& typed = *typed_ptr;
  std::string_view type = typed.name();
  if (type == "nil") return Value{};
  if (type == "boolean") {
    std::string t = typed.text();
    if (t == "1" || t == "true") return Value{true};
    if (t == "0" || t == "false") return Value{false};
    return err_parse("bad boolean '" + t + "'");
  }
  if (type == "int" || type == "i4" || type == "i8") {
    return Value{typed.text()}.to_int().map(
        [](std::int64_t v) { return Value{v}; });
  }
  if (type == "double") {
    return Value{typed.text()}.to_double().map(
        [](double v) { return Value{v}; });
  }
  if (type == "string") return Value{typed.text()};
  if (type == "base64") {
    EXC_ASSIGN_OR_RETURN(Bytes bytes, base64_decode(typed.text()));
    return Value{std::move(bytes)};
  }
  if (type == "array") {
    EXC_ASSIGN_OR_RETURN(const xml::Element* data, typed.require_child("data"));
    ValueArray array;
    for (const xml::Element& child : data->children()) {
      EXC_ASSIGN_OR_RETURN(Value item, decode_value(child));
      array.push_back(std::move(item));
    }
    return Value{std::move(array)};
  }
  if (type == "struct") {
    ValueMap map;
    for (const xml::Element& member : typed.children()) {
      if (member.name() != "member") {
        return err_parse("expected <member> inside <struct>");
      }
      EXC_ASSIGN_OR_RETURN(const xml::Element* name,
                           member.require_child("name"));
      EXC_ASSIGN_OR_RETURN(const xml::Element* inner,
                           member.require_child("value"));
      EXC_ASSIGN_OR_RETURN(Value item, decode_value(*inner));
      map.emplace(name->text(), std::move(item));
    }
    return Value{std::move(map)};
  }
  return err_parse("unknown XML-RPC scalar type <" + std::string(type) + ">");
}

std::string encode(const MethodCall& call) {
  xml::Document doc("methodCall");
  xml::Element& root = doc.root();
  root.add_text_child("methodName", call.method);
  xml::Element& params = root.add_child("params");
  for (const Value& param : call.params) {
    xml::Element& holder = params.add_child("param");
    encode_value(param, holder);
  }
  return xml::write(root, {.pretty = false});
}

std::string encode(const MethodResponse& response) {
  xml::Document doc("methodResponse");
  xml::Element& root = doc.root();
  if (response.is_fault) {
    xml::Element& fault = root.add_child("fault");
    ValueMap detail;
    detail.emplace("faultCode", Value{response.fault_code});
    detail.emplace("faultString", Value{response.fault_string});
    encode_value(Value{std::move(detail)}, fault);
  } else {
    xml::Element& holder = root.add_child("params").add_child("param");
    encode_value(response.result, holder);
  }
  return xml::write(root, {.pretty = false});
}

Result<MethodCall> decode_call(const std::string& xml_text) {
  EXC_ASSIGN_OR_RETURN(xml::Document doc, xml::parse(xml_text));
  const xml::Element& root = doc.root();
  if (root.name() != "methodCall") {
    return err_parse("expected <methodCall>, got <" + std::string(root.name()) +
                     ">");
  }
  EXC_ASSIGN_OR_RETURN(const xml::Element* name,
                       root.require_child("methodName"));
  MethodCall call;
  call.method = name->text();
  if (const xml::Element* params = root.child("params")) {
    for (const xml::Element* param : params->children_named("param")) {
      EXC_ASSIGN_OR_RETURN(const xml::Element* holder,
                           param->require_child("value"));
      EXC_ASSIGN_OR_RETURN(Value value, decode_value(*holder));
      call.params.push_back(std::move(value));
    }
  }
  return call;
}

Result<MethodResponse> decode_response(const std::string& xml_text) {
  EXC_ASSIGN_OR_RETURN(xml::Document doc, xml::parse(xml_text));
  const xml::Element& root = doc.root();
  if (root.name() != "methodResponse") {
    return err_parse("expected <methodResponse>, got <" +
                     std::string(root.name()) + ">");
  }
  if (const xml::Element* fault = root.child("fault")) {
    EXC_ASSIGN_OR_RETURN(const xml::Element* holder,
                         fault->require_child("value"));
    EXC_ASSIGN_OR_RETURN(Value detail, decode_value(*holder));
    if (!detail.is_map()) return err_parse("fault detail is not a struct");
    MethodResponse response;
    response.is_fault = true;
    if (const Value* code = detail.find("faultCode")) {
      EXC_ASSIGN_OR_RETURN(std::int64_t c, code->to_int());
      response.fault_code = static_cast<int>(c);
    }
    if (const Value* message = detail.find("faultString")) {
      response.fault_string = message->to_text();
    }
    return response;
  }
  EXC_ASSIGN_OR_RETURN(const xml::Element* params,
                       root.require_child("params"));
  EXC_ASSIGN_OR_RETURN(const xml::Element* param,
                       params->require_child("param"));
  EXC_ASSIGN_OR_RETURN(const xml::Element* holder,
                       param->require_child("value"));
  EXC_ASSIGN_OR_RETURN(Value value, decode_value(*holder));
  return MethodResponse::success(std::move(value));
}

}  // namespace excovery::rpc
