# Empty dependencies file for test_core_description.
# This may be replaced when dependencies are built.
