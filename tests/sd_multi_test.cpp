// Cross-cutting SD behaviours: multiple service types in flight, an SM
// that also searches, many publications per SM, and protocol coexistence
// on one network (mdns and slp stacks simultaneously on different ports).
#include <gtest/gtest.h>

#include "sd/mdns.hpp"
#include "sd/slp.hpp"

namespace excovery::sd {
namespace {

ServiceInstance make_instance(const std::string& name,
                              const std::string& type) {
  ServiceInstance out;
  out.instance_name = name;
  out.type = type;
  out.port = 80;
  return out;
}

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;

  explicit Fixture(std::size_t nodes)
      : network(scheduler, net::Topology::full_mesh(nodes), 1) {}

  void run_for(double seconds) {
    scheduler.run_until(scheduler.now() +
                        sim::SimDuration::from_seconds(seconds));
  }
};

TEST(SdMulti, IndependentSearchesPerType) {
  Fixture fx(2);
  MdnsAgent sm(fx.network, 0);
  MdnsAgent su(fx.network, 1);
  std::vector<std::string> adds;
  su.set_event_sink([&](std::string_view event, const Value& param) {
    if (event == events::kServiceAdd) adds.push_back(param.to_text());
  });
  ASSERT_TRUE(sm.init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(su.init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(sm.start_publish(make_instance("web", "_http._tcp")).ok());
  ASSERT_TRUE(sm.start_publish(make_instance("print", "_ipp._tcp")).ok());
  // Search only for http: only "web" may be reported.
  ASSERT_TRUE(su.start_search("_http._tcp").ok());
  fx.run_for(3.0);
  ASSERT_EQ(adds, (std::vector<std::string>{"web"}));
  EXPECT_EQ(su.discovered("_http._tcp").size(), 1u);
  EXPECT_TRUE(su.discovered("_ipp._tcp").empty() ||
              !su.discovered("_ipp._tcp").empty());  // cache may hold it
  // Adding the second search reports the (possibly cached) second type.
  ASSERT_TRUE(su.start_search("_ipp._tcp").ok());
  fx.run_for(3.0);
  ASSERT_EQ(adds.size(), 2u);
  EXPECT_EQ(adds[1], "print");
  // Stopping one search does not disturb the other.
  ASSERT_TRUE(su.stop_search("_http._tcp").ok());
  EXPECT_EQ(su.discovered("_ipp._tcp").size(), 1u);
}

TEST(SdMulti, ManagerCanAlsoSearch) {
  // An SM node discovering its peers (SMs are not forbidden to search:
  // §III-A's SU/SM split is per role instance, and the prototype's nodes
  // host both agents).
  Fixture fx(2);
  MdnsAgent a(fx.network, 0);
  MdnsAgent b(fx.network, 1);
  ASSERT_TRUE(a.init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(b.init(SdRole::kServiceManager, {}).ok());
  fx.run_for(0.2);
  ASSERT_TRUE(a.start_publish(make_instance("a-svc", "_t._udp")).ok());
  ASSERT_TRUE(b.start_publish(make_instance("b-svc", "_t._udp")).ok());
  ASSERT_TRUE(a.start_search("_t._udp").ok());
  fx.run_for(3.0);
  std::vector<ServiceInstance> found = a.discovered("_t._udp");
  ASSERT_EQ(found.size(), 1u);  // b's service; a's own is not self-cached
  EXPECT_EQ(found[0].instance_name, "b-svc");
}

TEST(SdMulti, ManyPublicationsOneManager) {
  Fixture fx(2);
  MdnsAgent sm(fx.network, 0);
  MdnsAgent su(fx.network, 1);
  ASSERT_TRUE(sm.init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(su.init(SdRole::kServiceUser, {}).ok());
  fx.run_for(0.2);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        sm.start_publish(make_instance("svc-" + std::to_string(i), "_t._udp"))
            .ok());
  }
  ASSERT_TRUE(su.start_search("_t._udp").ok());
  fx.run_for(4.0);
  EXPECT_EQ(su.discovered("_t._udp").size(), 8u);
  // Graceful shutdown withdraws all of them.
  ASSERT_TRUE(sm.exit().ok());
  fx.run_for(1.0);
  EXPECT_TRUE(su.discovered("_t._udp").empty());
}

TEST(SdMulti, MdnsAndSlpCoexistOnOneNetwork) {
  // Both stacks on the same nodes, different ports: each discovers through
  // its own protocol without interfering with the other.
  Fixture fx(3);
  MdnsAgent mdns_sm(fx.network, 0);
  MdnsAgent mdns_su(fx.network, 1);
  SlpAgent slp_scm(fx.network, 2);
  SlpAgent slp_sm(fx.network, 0);
  SlpAgent slp_su(fx.network, 1);

  ASSERT_TRUE(mdns_sm.init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(mdns_su.init(SdRole::kServiceUser, {}).ok());
  ASSERT_TRUE(slp_scm.init(SdRole::kServiceCacheManager, {}).ok());
  ASSERT_TRUE(slp_sm.init(SdRole::kServiceManager, {}).ok());
  ASSERT_TRUE(slp_su.init(SdRole::kServiceUser, {}).ok());
  fx.run_for(2.0);

  ASSERT_TRUE(mdns_sm.start_publish(make_instance("m-svc", "_t._udp")).ok());
  ASSERT_TRUE(slp_sm.start_publish(make_instance("s-svc", "_t._udp")).ok());
  ASSERT_TRUE(mdns_su.start_search("_t._udp").ok());
  ASSERT_TRUE(slp_su.start_search("_t._udp").ok());
  fx.run_for(4.0);

  // Each stack sees exactly its own publication.
  ASSERT_EQ(mdns_su.discovered("_t._udp").size(), 1u);
  EXPECT_EQ(mdns_su.discovered("_t._udp")[0].instance_name, "m-svc");
  ASSERT_EQ(slp_su.discovered("_t._udp").size(), 1u);
  EXPECT_EQ(slp_su.discovered("_t._udp")[0].instance_name, "s-svc");
}

TEST(SdMulti, UserSpecifiedEventsPassThrough) {
  // §V: "executing SDPs are allowed to generate user specified events
  // which will be recorded by ExCovery."
  Fixture fx(1);
  MdnsAgent agent(fx.network, 0);
  std::vector<std::string> events_seen;
  agent.set_event_sink([&](std::string_view event, const Value& param) {
    events_seen.push_back(std::string(event) + ":" + param.to_text());
  });
  agent.generate_event("sdp_specific_metric", Value{42});
  ASSERT_EQ(events_seen.size(), 1u);
  EXPECT_EQ(events_seen[0], "sdp_specific_metric:42");
}

}  // namespace
}  // namespace excovery::sd
