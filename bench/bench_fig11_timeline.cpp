// Fig. 11 — "Visualization of a one-shot discovery process": the SU/SM
// action-event timelines across the preparation, execution and clean-up
// phases, with the response time t_R from sd_start_search to
// sd_service_add.
//
// Regenerated from running code: a single one-shot two-party discovery is
// executed and its conditioned record rendered as the paper's timeline;
// t_R is measured on the operation level and on the packet level (via the
// request/response pairing the prototype added to Avahi).
#include "bench_common.hpp"
#include "stats/timeline.hpp"

using namespace excovery;

int main() {
  bench::banner("bench_fig11_timeline",
                "Fig. 11: one-shot discovery process with t_R");

  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 0;
  options.deadline_s = 30.0;
  bench::Executed executed = bench::must(bench::execute(options), "run");

  std::vector<storage::EventRow> events =
      bench::must(executed.package.events(1), "events");

  // Phase boundaries: preparation ends at sd_start_search (the marker in
  // Fig. 11), clean-up begins at the "done" flag.
  double search_time = -1;
  double done_time = -1;
  for (const storage::EventRow& event : events) {
    if (event.event_type == "sd_start_search") search_time = event.common_time;
    if (event.event_type == "done") done_time = event.common_time;
  }

  // Lane visualisation (the framework's Fig. 11 renderer).
  std::string rendered = bench::must(
      stats::render_timeline(executed.package, 1), "timeline");
  std::printf("\n%s", rendered.c_str());

  std::printf("\n%-12s %-10s %-24s %s\n", "time", "node", "event",
              "phase");
  for (const storage::EventRow& event : events) {
    const char* phase = "execution";
    if (search_time >= 0 && event.common_time < search_time) {
      phase = "preparation";
    } else if (done_time >= 0 && event.common_time >= done_time) {
      phase = "clean-up";
    }
    std::printf("%10.6fs  %-10s %-24s %s\n", event.common_time,
                event.node_id.c_str(), event.event_type.c_str(), phase);
  }

  // t_R on the SD operation level.
  std::vector<stats::RunDiscovery> discoveries = bench::must(
      stats::discoveries(executed.package), "discoveries");
  double t_r = -1;
  for (const stats::RunDiscovery& run : discoveries) {
    for (const auto& [provider, latency] : run.latencies) t_r = latency;
  }
  std::printf("\nt_R (operation level, sd_start_search -> sd_service_add): "
              "%.6fs\n",
              t_r);

  // t_R on the packet level: matched request/response pairs.
  std::vector<stats::RequestResponsePair> pairs = bench::must(
      stats::pair_requests(executed.package), "pairs");
  if (pairs.empty()) {
    std::printf("packet level: no solicited response (discovery was driven "
                "by an unsolicited announcement, as Fig. 11's note on "
                "announcements describes)\n");
  } else {
    for (const stats::RequestResponsePair& pair : pairs) {
      std::printf("packet level: txn %u %s -> %s rtt %.6fs\n", pair.txn_id,
                  pair.requester.c_str(), pair.responder.c_str(),
                  pair.rtt());
    }
  }
  return t_r > 0 ? 0 : 1;
}
