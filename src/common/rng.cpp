#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace excovery {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1) | 1ULL) {
  (*this)();
  state_ += seed;
  (*this)();
}

Pcg32::result_type Pcg32::operator()() noexcept {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  auto rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    std::uint32_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::uniform01() noexcept {
  // 32 random bits scaled to [0,1).
  return static_cast<double>((*this)()) * 0x1.0p-32;
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range <= 0xFFFFFFFFull) {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint32_t>(range)));
  }
  // Compose two 32-bit draws for wide ranges; slight bias is acceptable for
  // the framework's use (no range this wide is used in experiments).
  std::uint64_t wide =
      (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return lo + static_cast<std::int64_t>(wide % range);
}

bool Pcg32::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Pcg32::exponential(double lambda) noexcept {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-32;
  return -std::log(u) / lambda;
}

double Pcg32::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-32;
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

Pcg32 RngFactory::stream(std::string_view name,
                         std::uint64_t index) const noexcept {
  std::uint64_t seed = derive_seed(name, index);
  std::uint64_t tmp = seed ^ 0x6a09e667f3bcc908ULL;
  std::uint64_t stream_sel = splitmix64(tmp);
  return {seed, stream_sel};
}

std::uint64_t RngFactory::derive_seed(std::string_view name,
                                      std::uint64_t index) const noexcept {
  std::uint64_t state = master_seed_ ^ fnv1a64(name) ^ (index * 0x9E3779B97f4A7C15ULL);
  return splitmix64(state);
}

}  // namespace excovery
