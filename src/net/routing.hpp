// Shortest-path routing over a Topology.
//
// The DES testbed runs mesh routing protocols below the experiment traffic;
// the simulator substitutes min-hop routing (BFS with deterministic
// tie-breaking on lower node id).  `hop_count` also serves the topology
// measurement of §IV-B4, taken before and after each experiment.
//
// The engine is *lazy* (DESIGN.md §13): instead of the former all-pairs
// next-hop matrix (O(V²) memory, full-table rebuild on change), a source's
// row is BFS-computed on the first `next_hop(from, ...)` / `hop_count`
// query and kept in a bounded LRU row cache.  Every cached row is a pure
// function of (adjacency, disabled links), so caching and eviction never
// change an answer — only when it is computed.  A generation counter
// invalidates the whole cache on structural rebuilds; link churn
// (dynamic-world faults, DESIGN.md §12) invalidates selectively:
// `set_link_enabled` drops only the cached rows whose BFS tree can actually
// change, using the same distance conditions the former eager repair used,
// and the result is guaranteed identical to a full rebuild over the reduced
// graph (property-tested).
//
// Adjacency is CSR (offset + neighbour arrays, rows sorted by node id) so
// BFS over 50k-node worlds streams through two flat arrays instead of a
// vector-of-vectors pointer chase.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/link_set.hpp"
#include "net/topology.hpp"

namespace excovery::net {

/// Normalised (min, max) endpoint pair identifying an undirected link.
using LinkKey = std::pair<NodeId, NodeId>;

inline LinkKey link_key(NodeId a, NodeId b) noexcept {
  return a < b ? LinkKey{a, b} : LinkKey{b, a};
}

class RoutingTable {
 public:
  /// Build the routing engine for the given topology.  No routes are
  /// computed yet; rows materialise on first query.
  explicit RoutingTable(const Topology& topology);

  /// Rebind to (possibly changed) topology structure.  Drops every cached
  /// row.
  void rebuild(const Topology& topology);

  /// Rebind, treating every link in `disabled` as absent.  Used for bulk
  /// partition activation/heal where many links toggle at once.
  void rebuild(const Topology& topology, const LinkSet& disabled);

  /// Incrementally enable/disable one link.  The link must exist in the
  /// topology the table was last rebuilt from (unknown links are ignored).
  /// Cached rows whose distances or BFS trees cannot change are kept; the
  /// rest recompute lazily.  Query results are bit-identical to a full
  /// rebuild over the same reduced graph.
  void set_link_enabled(NodeId a, NodeId b, bool enabled);

  /// Next hop from `from` toward `to`; kInvalidNode if either id is out of
  /// range, the destination is unreachable, or from == to.
  NodeId next_hop(NodeId from, NodeId to) const;

  /// Hop count between nodes; -1 if out of range or unreachable, 0 if
  /// identical.
  int hop_count(NodeId from, NodeId to) const;

  /// Full path from `from` to `to` including both endpoints; empty if out
  /// of range or unreachable.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  std::size_t node_count() const noexcept { return size_; }

  // ---- scale introspection (bench_topology_scale, DESIGN.md §13) ---------
  /// Rows currently materialised in the cache.
  std::size_t cached_row_count() const noexcept;
  /// Maximum rows the cache may hold.
  std::size_t row_cache_capacity() const noexcept { return capacity_; }
  /// Override the row-cache bound (clamped to >= 1 and <= node count).
  /// Shrinking evicts least-recently-used rows immediately.
  void set_row_cache_capacity(std::size_t rows);
  /// Bytes held by the engine: CSR adjacency + cached rows + scratch.
  std::size_t memory_bytes() const noexcept;
  /// Structural generation; bumped by every rebuild.
  std::uint64_t generation() const noexcept { return generation_; }

 private:
  /// One cached per-source BFS result.  `dist`/`next_hop` are valid iff
  /// `generation == RoutingTable::generation_` and `row_of_[source]` points
  /// here.
  struct Row {
    NodeId source = kInvalidNode;
    std::uint64_t generation = 0;  ///< 0 = slot free / invalidated
    std::uint64_t last_used = 0;
    std::vector<NodeId> next_hop;
    std::vector<std::int32_t> dist;  ///< wide enough for 100k-node chains
  };

  /// Row for `source`, computing and caching it if absent.  `source` must
  /// be < size_.
  const Row& row_for(NodeId source) const;

  /// BFS from `source` over the CSR adjacency minus `disabled_`, filling
  /// `row` (deterministic: neighbours visited in ascending node id).
  void compute_row(NodeId source, Row& row) const;

  /// Slot index to hold a new row: a free slot, a new slot while under
  /// capacity, or the least-recently-used victim.
  std::size_t pick_slot() const;

  /// Drop the cached row of `source`, if any.
  void invalidate_row(NodeId source) const;

  /// True if the topology the engine was rebuilt from contains link (a, b).
  bool adjacent_in_topology(NodeId a, NodeId b) const noexcept;

  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;

  // CSR adjacency over *all* topology links, rows sorted ascending.
  // Disabled links stay in the arrays and are skipped during BFS via
  // `disabled_` — patching a flat CSR per flap would shift O(E) entries,
  // while the skip costs one branch only while any link is down.
  std::vector<std::uint32_t> adj_offset_;  ///< size_ + 1 entries
  std::vector<NodeId> adj_neighbour_;      ///< 2 * link_count entries
  LinkSet disabled_;

  // Row cache.  Mutable: queries are logically const (answers depend only
  // on the graph) but materialise rows on demand.  Not thread-safe — each
  // platform replica owns its Network/RoutingTable.
  std::size_t capacity_ = 1;
  // LRU timestamps only matter once eviction is possible (capacity < size);
  // below that the hot hit path skips the bookkeeping store entirely.
  bool track_lru_ = false;
  mutable std::uint64_t tick_ = 0;
  mutable std::vector<Row> rows_;
  mutable std::vector<std::int32_t> row_of_;  ///< source -> slot, -1 = none

  // BFS scratch, reused across row computations.
  mutable std::vector<NodeId> scratch_frontier_;  ///< flat FIFO (head scans)
};

}  // namespace excovery::net
