#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/strings.hpp"

namespace excovery::stats {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double min_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
  // NaNs carry no order and would poison the sort's strict weak ordering;
  // drop them so the percentile is over the comparable values only.
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  if (values.empty()) return 0.0;
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lower = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - frac) + values[lower + 1] * frac;
}

Proportion wilson(std::size_t successes, std::size_t trials) {
  Proportion out;
  out.successes = successes;
  out.trials = trials;
  if (trials == 0) return out;
  constexpr double z = 1.959963985;  // 95%
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  out.estimate = p;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double centre = p + z2 / (2.0 * n);
  double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  out.lower = std::max(0.0, (centre - margin) / denom);
  out.upper = std::min(1.0, (centre + margin) / denom);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {
  // Reversed bounds describe the same range; normalise instead of letting
  // every add() fall through with a negative width.
  if (hi_ < lo_) std::swap(lo_, hi_);
}

void Histogram::add(double value) {
  ++total_;
  if (std::isnan(value)) {
    // NaN compares false against both bounds and would otherwise reach the
    // bin computation with an undefined float-to-int cast.
    ++nan_;
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    // Width-zero range (lo == hi): the single representable value lands in
    // bin 0 rather than counting as overflow.
    if (value == lo_) {
      ++counts_.front();
      return;
    }
    ++overflow_;
    return;
  }
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((value - lo_) / width);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

double Histogram::bin_lower(std::size_t bin) const {
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

std::string Histogram::format(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t count : counts_) peak = std::max(peak, count);
  std::string out;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    double lower = bin_lower(bin);
    double upper = bin_lower(bin + 1);
    std::size_t bar =
        peak == 0 ? 0 : counts_[bin] * width / peak;
    out += strings::format("%8.3f-%-8.3f | %-*s %zu\n", lower, upper,
                           static_cast<int>(width),
                           std::string(bar, '#').c_str(), counts_[bin]);
  }
  if (underflow_ > 0) out += strings::format("underflow: %zu\n", underflow_);
  if (overflow_ > 0) out += strings::format("overflow:  %zu\n", overflow_);
  if (nan_ > 0) out += strings::format("nan:       %zu\n", nan_);
  return out;
}

}  // namespace excovery::stats
