#include "common/value.hpp"

#include <charconv>
#include <cmath>

#include "common/strings.hpp"

namespace excovery {

std::string_view to_string(ValueType type) noexcept {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kBytes: return "bytes";
    case ValueType::kArray: return "array";
    case ValueType::kMap: return "map";
  }
  return "unknown";
}

Result<std::int64_t> Value::to_int() const {
  switch (type()) {
    case ValueType::kInt:
      return as_int();
    case ValueType::kBool:
      return static_cast<std::int64_t>(as_bool() ? 1 : 0);
    case ValueType::kDouble: {
      double d = as_double();
      if (d != std::floor(d)) {
        return err_invalid("double " + std::to_string(d) + " is not integral");
      }
      return static_cast<std::int64_t>(d);
    }
    case ValueType::kString: {
      const std::string& s = as_string();
      std::string trimmed = strings::trim(strings::strip_quotes(s));
      std::int64_t out = 0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
        return err_invalid("cannot parse '" + s + "' as int");
      }
      return out;
    }
    default:
      return err_invalid(std::string("cannot convert ") +
                         std::string(excovery::to_string(type())) + " to int");
  }
}

Result<double> Value::to_double() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(as_int());
    case ValueType::kDouble:
      return as_double();
    case ValueType::kString: {
      const std::string& s = as_string();
      std::string trimmed = strings::trim(strings::strip_quotes(s));
      // std::from_chars for double is available in libstdc++ 11+.
      double out = 0.0;
      auto [ptr, ec] =
          std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), out);
      if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
        return err_invalid("cannot parse '" + s + "' as double");
      }
      return out;
    }
    default:
      return err_invalid(std::string("cannot convert ") +
                         std::string(excovery::to_string(type())) +
                         " to double");
  }
}

Result<bool> Value::to_bool() const {
  switch (type()) {
    case ValueType::kBool:
      return as_bool();
    case ValueType::kInt:
      return as_int() != 0;
    case ValueType::kString: {
      std::string s = strings::to_lower(
          strings::trim(strings::strip_quotes(as_string())));
      if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
      if (s == "false" || s == "0" || s == "no" || s == "off") return false;
      return err_invalid("cannot parse '" + as_string() + "' as bool");
    }
    default:
      return err_invalid(std::string("cannot convert ") +
                         std::string(excovery::to_string(type())) + " to bool");
  }
}

std::string Value::to_text() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble:
      return strings::format_double(as_double());
    case ValueType::kString:
      return as_string();
    case ValueType::kBytes:
      return strings::to_hex(as_bytes());
    case ValueType::kArray: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : as_array()) {
        if (!first) out += ",";
        first = false;
        out += v.to_text();
      }
      out += "]";
      return out;
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : as_map()) {
        if (!first) out += ",";
        first = false;
        out += k;
        out += "=";
        out += v.to_text();
      }
      out += "}";
      return out;
    }
  }
  return "";
}

const Value* Value::find(std::string_view key) const {
  if (!is_map()) return nullptr;
  auto it = as_map().find(std::string(key));
  if (it == as_map().end()) return nullptr;
  return &it->second;
}

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

}  // namespace excovery
