#include "sim/event_bus.hpp"

#include <algorithm>

namespace excovery::sim {

SubscriptionHandle EventBus::subscribe(std::string name, Callback fn) {
  std::uint64_t id = next_id_++;
  std::uint32_t list_index = kWildcardIndex;
  if (!name.empty()) {
    auto [it, inserted] = name_index_.try_emplace(
        std::move(name), static_cast<std::uint32_t>(by_name_.size()));
    if (inserted) by_name_.emplace_back();
    list_index = it->second;
  }
  list_for(list_index).push_back(Subscriber{id, std::move(fn), false});
  id_to_list_.emplace(id, list_index);
  return SubscriptionHandle(id);
}

void EventBus::unsubscribe(SubscriptionHandle handle) {
  if (!handle.valid()) return;
  auto where = id_to_list_.find(handle.id_);
  if (where == id_to_list_.end()) return;
  SubscriberList& list = list_for(where->second);
  // Ids are assigned in subscription order, so each list is id-sorted.
  auto it = std::lower_bound(
      list.begin(), list.end(), handle.id_,
      [](const Subscriber& s, std::uint64_t id) { return s.id < id; });
  if (it == list.end() || it->id != handle.id_) return;
  if (publish_depth_ > 0) {
    // Mid-publish: mark only.  The removed flag is checked immediately
    // before every invocation, so this subscriber can never fire again; the
    // entry is physically erased once the outermost publish returns.
    it->removed = true;
    needs_compaction_ = true;
  } else {
    list.erase(it);
    id_to_list_.erase(where);
  }
}

void EventBus::publish(const BusEvent& event) {
  ++published_;
  // Resolve the name once; a name first interned by a reentrant subscribe
  // during this publish must not see the current event anyway.
  auto named_it = name_index_.find(event.name);
  const bool has_named = named_it != name_index_.end();
  const std::uint32_t name_index = has_named ? named_it->second : 0;

  ++publish_depth_;
  // Snapshot sizes: subscribers added during dispatch (which only ever
  // append) take effect for the next publish.
  const std::size_t named_count = has_named ? by_name_[name_index].size() : 0;
  const std::size_t wildcard_count = wildcard_.size();
  std::size_t ni = 0;
  std::size_t wi = 0;
  // Merge the two id-sorted lists so invocation follows subscription order,
  // exactly as a single linear list would.  Elements are re-indexed every
  // iteration (never cached across an invocation): reentrant subscribes may
  // intern new names and grow `by_name_`, but deque elements never move.
  while (ni < named_count || wi < wildcard_count) {
    bool take_named;
    if (ni >= named_count) {
      take_named = false;
    } else if (wi >= wildcard_count) {
      take_named = true;
    } else {
      take_named = by_name_[name_index][ni].id < wildcard_[wi].id;
    }
    Subscriber& s =
        take_named ? by_name_[name_index][ni++] : wildcard_[wi++];
    if (s.removed) continue;
#if EXCOVERY_OBS_ENABLED
    ++dispatched_;
#endif
    s.fn(event);
  }
  --publish_depth_;
  if (publish_depth_ == 0 && needs_compaction_) compact();
}

void EventBus::compact() {
  auto sweep = [this](SubscriberList& list) {
    for (auto it = list.begin(); it != list.end();) {
      if (it->removed) {
        id_to_list_.erase(it->id);
        it = list.erase(it);
      } else {
        ++it;
      }
    }
  };
  sweep(wildcard_);
  for (SubscriberList& list : by_name_) sweep(list);
  needs_compaction_ = false;
}

}  // namespace excovery::sim
