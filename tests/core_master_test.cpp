// ExperiMaster end-to-end tests: lifecycle ordering, treatment application,
// fault recovery (abort + retry), resume of interrupted experiments, the
// three SD architectures, environment traffic, and conditioning output.
#include <gtest/gtest.h>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"

namespace excovery::core {
namespace {

using scenario::TopologyKind;
using scenario::TopologyOptions;
using scenario::TwoPartyOptions;

struct TestRig {
  ExperimentDescription description;
  std::unique_ptr<SimPlatform> platform;
};

Result<TestRig> make_setup(const TwoPartyOptions& options,
                         const TopologyOptions& topology_options = {},
                         std::uint64_t platform_seed = 42) {
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       scenario::topology_for(description, topology_options));
  SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = platform_seed;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<SimPlatform> platform,
                       SimPlatform::create(description, std::move(config)));
  return TestRig{std::move(description), std::move(platform)};
}

TEST(Master, LifecycleEventsOrderedPerRun) {
  TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 1;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok()) << rig.error().to_string();
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  for (std::int64_t run_id : package.value().run_ids()) {
    Result<std::vector<storage::EventRow>> events =
        package.value().events(run_id);
    ASSERT_TRUE(events.ok());
    // Per node: run_init precedes everything else, run_exit ends it.
    std::map<std::string, double> init_time;
    std::map<std::string, double> exit_time;
    for (const storage::EventRow& event : events.value()) {
      if (event.event_type == "run_init") {
        init_time[event.node_id] = event.common_time;
      }
      if (event.event_type == "run_exit") {
        exit_time[event.node_id] = event.common_time;
      }
    }
    EXPECT_EQ(init_time.size(), 3u);  // SM0, SU0, ENV0
    for (const storage::EventRow& event : events.value()) {
      if (event.node_id == kEnvironmentNode) continue;
      if (event.event_type == "run_init") continue;
      EXPECT_GE(event.common_time, init_time[event.node_id] - 1e-3)
          << event.event_type << " on " << event.node_id;
      if (event.event_type != "run_exit") {
        EXPECT_LE(event.common_time, exit_time[event.node_id] + 1e-3);
      }
    }
  }
}

TEST(Master, ExperimentInfoAndArtifactsStored) {
  TwoPartyOptions options;
  options.replications = 1;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  MasterOptions master_options;
  master_options.comment = "unit test";
  ExperiMaster master(rig.value().description, *rig.value().platform,
                      std::move(master_options));
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok());

  // ExperimentInfo holds the description XML, re-parsable.
  Result<std::string> xml = package.value().description_xml();
  ASSERT_TRUE(xml.ok());
  EXPECT_TRUE(ExperimentDescription::parse(xml.value()).ok());
  EXPECT_EQ(package.value().ee_version().value(), storage::kEeVersion);

  // Topology measured before and after (§IV-B4).
  const storage::Table* measurements =
      package.value().database().table("ExperimentMeasurements");
  bool before = false;
  bool after = false;
  bool detail = false;
  for (std::size_t r = 0; r < measurements->row_count(); ++r) {
    storage::RowView row = measurements->row(r);
    if (row.as_string(2) == "topology_before") before = true;
    if (row.as_string(2) == "topology_after") after = true;
    if (row.as_string(2) == "topology_detail") {
      detail = true;
      // Advanced recording carries adjacency with link quality (§IV-B4).
      EXPECT_NE(row.as_string(3).find("links:"), std::string::npos);
      EXPECT_NE(row.as_string(3).find("loss="), std::string::npos);
    }
  }
  EXPECT_TRUE(before);
  EXPECT_TRUE(after);
  EXPECT_TRUE(detail);

  // RunInfos carries a time sync estimate per (run, node).
  Result<std::vector<storage::RunInfoRow>> infos =
      package.value().run_infos();
  ASSERT_TRUE(infos.ok());
  EXPECT_EQ(infos.value().size(),
            rig.value().platform->node_names().size());

  // Logs captured per node.
  EXPECT_NE(package.value().log_for("SU0").find("run_init"),
            std::string::npos);
}

TEST(Master, TimeSyncEstimatesTrackTrueOffsets) {
  TwoPartyOptions options;
  options.replications = 1;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  SimPlatform& platform = *rig.value().platform;
  ExperiMaster master(rig.value().description, platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok());

  Result<std::vector<storage::RunInfoRow>> infos =
      package.value().run_infos();
  ASSERT_TRUE(infos.ok());
  for (const storage::RunInfoRow& info : infos.value()) {
    Result<net::NodeId> id = platform.node_id(info.node_id);
    ASSERT_TRUE(id.ok());
    double true_offset =
        static_cast<double>(platform.network()
                                .clock(id.value())
                                .true_offset_at(sim::SimTime::from_seconds(
                                    info.start_time))
                                .nanos()) /
        1e9;
    // Estimation error bounded by control-channel asymmetry (< 1 ms).
    EXPECT_NEAR(info.time_diff, true_offset, 1e-3) << info.node_id;
    // Offsets themselves are up to 50 ms, so the estimate is meaningful.
  }
}

TEST(Master, FactorsAppliedPerTreatment) {
  // Loss factor with two levels x 2 replications = 4 runs; the loss fault
  // must start in every run (events recorded), with the factor's level.
  TwoPartyOptions options;
  options.replications = 2;
  options.loss_levels = {0.0, 0.3};
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  ExperiMaster master(rig.value().description, *rig.value().platform);
  EXPECT_EQ(master.plan().run_count(), 4u);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  for (std::int64_t run_id : package.value().run_ids()) {
    Result<std::vector<storage::EventRow>> events =
        package.value().events(run_id);
    ASSERT_TRUE(events.ok());
    int starts = 0;
    int stops = 0;
    for (const storage::EventRow& event : events.value()) {
      if (event.event_type == "fault_message_loss_start") ++starts;
      if (event.event_type == "fault_message_loss_stop") ++stops;
    }
    EXPECT_EQ(starts, 1) << "run " << run_id;
    EXPECT_EQ(stops, 1) << "run " << run_id;
  }
}

TEST(Master, RecoveryRetriesAbortedRuns) {
  TwoPartyOptions options;
  options.replications = 3;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  MasterOptions master_options;
  // Run 2 fails on its first attempt, then succeeds.
  master_options.abort_hook = [](std::int64_t run_id, int attempt) {
    return run_id == 2 && attempt == 1;
  };
  int progress_calls = 0;
  int failures = 0;
  master_options.progress = [&](const RunSpec&, int, bool ok) {
    ++progress_calls;
    if (!ok) ++failures;
  };
  ExperiMaster master(rig.value().description, *rig.value().platform,
                      std::move(master_options));
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_EQ(master.aborted_attempts(), 1);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(progress_calls, 4);  // 3 runs + 1 retry
  // All three runs present exactly once; the aborted attempt left no data.
  EXPECT_EQ(package.value().run_ids(),
            (std::vector<std::int64_t>{1, 2, 3}));
  Result<std::vector<storage::EventRow>> run2 = package.value().events(2);
  ASSERT_TRUE(run2.ok());
  int run_inits = 0;
  for (const storage::EventRow& event : run2.value()) {
    if (event.event_type == "run_init" && event.node_id == "SU0") {
      ++run_inits;
    }
  }
  EXPECT_EQ(run_inits, 1);
}

TEST(Master, PersistentFailureGivesUpAfterMaxAttempts) {
  TwoPartyOptions options;
  options.replications = 2;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  MasterOptions master_options;
  master_options.max_attempts_per_run = 2;
  master_options.abort_hook = [](std::int64_t run_id, int) {
    return run_id == 1;  // always fails
  };
  ExperiMaster master(rig.value().description, *rig.value().platform,
                      std::move(master_options));
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_FALSE(package.ok());
  EXPECT_EQ(master.aborted_attempts(), 2);
}

TEST(Master, ResumeSkipsCompletedRuns) {
  // First master completes runs 1-2 then "crashes" (we stop it by running
  // a truncated plan); a second master over the same platform resumes and
  // only executes run 3.
  TwoPartyOptions options;
  options.replications = 3;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  SimPlatform& platform = *rig.value().platform;

  {
    ExperiMaster first(rig.value().description, platform);
    // Execute only the first two runs manually.
    ASSERT_TRUE(first.execute_run(first.plan().runs()[0]).ok());
    ASSERT_TRUE(first.execute_run(first.plan().runs()[1]).ok());
    EXPECT_EQ(platform.level2().completed_runs().size(), 2u);
  }

  int executed = 0;
  MasterOptions master_options;
  master_options.progress = [&](const RunSpec&, int, bool) { ++executed; };
  ExperiMaster resumed(rig.value().description, platform,
                       std::move(master_options));
  Result<storage::ExperimentPackage> package = resumed.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  EXPECT_EQ(executed, 1);  // only run 3 was re-executed
  EXPECT_EQ(package.value().run_ids(),
            (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Master, ThreePartyArchitectureDiscoversViaScm) {
  TwoPartyOptions options;
  options.protocol = "slp";
  options.architecture = "three-party";
  options.scm_count = 1;
  options.replications = 2;
  options.environment_count = 1;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok()) << rig.error().to_string();
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 10.0, 1);
  ASSERT_TRUE(responsiveness.ok());
  EXPECT_DOUBLE_EQ(responsiveness.value().estimate, 1.0);

  // SCM machinery visible in the event record.
  Result<std::vector<storage::EventRow>> events =
      package.value().events(1);
  ASSERT_TRUE(events.ok());
  int scm_started = 0;
  int scm_found = 0;
  int registrations = 0;
  for (const storage::EventRow& event : events.value()) {
    if (event.event_type == "scm_started") ++scm_started;
    if (event.event_type == "scm_found") ++scm_found;
    if (event.event_type == "scm_registration_add") ++registrations;
  }
  EXPECT_EQ(scm_started, 1);
  EXPECT_GE(scm_found, 2);  // SM and SU both find the SCM
  EXPECT_GE(registrations, 1);
}

TEST(Master, HybridArchitectureWorks) {
  TwoPartyOptions options;
  options.protocol = "hybrid";
  options.architecture = "hybrid";
  options.scm_count = 1;
  options.replications = 1;
  options.deadline_s = 20.0;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok()) << rig.error().to_string();
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 20.0, 1);
  ASSERT_TRUE(responsiveness.ok());
  EXPECT_DOUBLE_EQ(responsiveness.value().estimate, 1.0);
}

TEST(Master, MultipleProvidersAllDiscovered) {
  TwoPartyOptions options;
  options.sm_count = 3;
  options.replications = 2;
  options.deadline_s = 30.0;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  ASSERT_TRUE(discoveries.ok());
  ASSERT_EQ(discoveries.value().size(), 2u);  // one SU x two runs
  for (const stats::RunDiscovery& run : discoveries.value()) {
    EXPECT_EQ(run.latencies.size(), 3u);
    EXPECT_TRUE(run.latencies.count("SM0") == 1);
    EXPECT_TRUE(run.latencies.count("SM1") == 1);
    EXPECT_TRUE(run.latencies.count("SM2") == 1);
  }
}

TEST(Master, EnvironmentTrafficRunsDuringExperiment) {
  TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 4;
  options.pairs_levels = {2};
  options.bw_levels = {50};
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok()) << rig.error().to_string();
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  for (std::int64_t run_id : package.value().run_ids()) {
    Result<std::vector<storage::EventRow>> events =
        package.value().events(run_id);
    ASSERT_TRUE(events.ok());
    double ready = -1;
    double start = -1;
    double stop = -1;
    for (const storage::EventRow& event : events.value()) {
      if (event.node_id != kEnvironmentNode) continue;
      if (event.event_type == "ready_to_init") ready = event.common_time;
      if (event.event_type == "env_traffic_start") start = event.common_time;
      if (event.event_type == "env_traffic_stop") stop = event.common_time;
    }
    EXPECT_GE(ready, 0.0) << "run " << run_id;
    EXPECT_GE(start, ready) << "run " << run_id;
    EXPECT_GT(stop, start) << "run " << run_id;
  }
}

TEST(Master, DeterministicAcrossIdenticalSetups) {
  TwoPartyOptions options;
  options.replications = 2;
  options.loss_levels = {0.2};
  auto run_once = [&]() -> std::vector<std::string> {
    Result<TestRig> rig = make_setup(options);
    EXPECT_TRUE(rig.ok());
    ExperiMaster master(rig.value().description, *rig.value().platform);
    Result<storage::ExperimentPackage> package = master.execute();
    EXPECT_TRUE(package.ok());
    std::vector<std::string> trace;
    Result<std::vector<storage::EventRow>> events =
        package.value().all_events();
    EXPECT_TRUE(events.ok());
    for (const storage::EventRow& event : events.value()) {
      trace.push_back(std::to_string(event.run_id) + "|" + event.node_id +
                      "|" + std::to_string(event.common_time) + "|" +
                      event.event_type + "|" + event.parameter);
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Master, ChainTopologyMultiHopDiscovery) {
  TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 0;
  options.deadline_s = 30.0;
  TopologyOptions topology;
  topology.kind = TopologyKind::kChain;
  topology.chain_spacing = 3;  // 2 relays between SM0 and SU0
  Result<TestRig> rig = make_setup(options, topology);
  ASSERT_TRUE(rig.ok()) << rig.error().to_string();
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 30.0, 1);
  ASSERT_TRUE(responsiveness.ok());
  EXPECT_DOUBLE_EQ(responsiveness.value().estimate, 1.0);
}

TEST(Master, PacketsRecordedWithSourceTracking) {
  TwoPartyOptions options;
  options.replications = 1;
  Result<TestRig> rig = make_setup(options);
  ASSERT_TRUE(rig.ok());
  ExperiMaster master(rig.value().description, *rig.value().platform);
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok());
  Result<std::vector<storage::PacketRow>> packets =
      package.value().packets(1);
  ASSERT_TRUE(packets.ok());
  ASSERT_GT(packets.value().size(), 0u);
  for (const storage::PacketRow& row : packets.value()) {
    EXPECT_FALSE(row.src_node_id.empty());
    // Payload decodes back to a wire image with route tracking.
    Result<net::WireImage> image = net::capture_from_wire(row.data);
    ASSERT_TRUE(image.ok());
    EXPECT_FALSE(image.value().packet.route.empty());
  }
}

}  // namespace
}  // namespace excovery::core
