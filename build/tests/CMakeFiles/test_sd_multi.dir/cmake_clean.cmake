file(REMOVE_RECURSE
  "CMakeFiles/test_sd_multi.dir/sd_multi_test.cpp.o"
  "CMakeFiles/test_sd_multi.dir/sd_multi_test.cpp.o.d"
  "test_sd_multi"
  "test_sd_multi.pdb"
  "test_sd_multi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
