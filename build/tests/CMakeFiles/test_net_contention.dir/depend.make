# Empty dependencies file for test_net_contention.
# This may be replaced when dependencies are built.
