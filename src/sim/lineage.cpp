#include "sim/lineage.hpp"

namespace excovery::sim {

std::string_view to_string(LineageKind kind) {
  switch (kind) {
    case LineageKind::kRoot:
      return "root";
    case LineageKind::kSend:
      return "send";
    case LineageKind::kHop:
      return "hop";
    case LineageKind::kDeliver:
      return "deliver";
    case LineageKind::kDrop:
      return "drop";
    case LineageKind::kDup:
      return "dup";
    case LineageKind::kQuery:
      return "query";
    case LineageKind::kAnswer:
      return "answer";
    case LineageKind::kCacheStore:
      return "cache_store";
    case LineageKind::kCacheHit:
      return "cache_hit";
    case LineageKind::kScmHit:
      return "scm_hit";
    case LineageKind::kSdEvent:
      return "sd_event";
  }
  return "?";
}

#if EXCOVERY_OBS_ENABLED

LineageLog::LineageLog(std::size_t ring_capacity) {
  if (ring_capacity == 0) ring_capacity = 1;
  ring_.resize(ring_capacity);
  ring_cap_ = ring_.size();
  // Interned id 0 is reserved for "no label".
  names_.emplace_back();
  name_ids_.emplace("", 0);
}

void LineageLog::begin_run(std::uint64_t run_id, std::uint32_t attempt) {
  run_id_ = run_id;
  attempt_ = attempt;
  next_id_ = 1;
  ring_next_ = 0;
  graph_active_ = graph_enabled_;
  graph_.clear();
}

std::uint16_t LineageLog::intern(std::string_view text) {
  // Heterogeneous lookup: repeated interning of a known label allocates
  // nothing (the hot path interns the same handful of site labels).
  auto it = name_ids_.find(text);
  if (it != name_ids_.end()) return it->second;
  if (names_.size() > 0xFFFF) return 0;  // interner full: degrade to ""
  const std::uint16_t id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(text);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::string_view LineageLog::name(std::uint16_t id) const noexcept {
  if (id >= names_.size()) return {};
  return names_[id];
}

#endif  // EXCOVERY_OBS_ENABLED

}  // namespace excovery::sim
