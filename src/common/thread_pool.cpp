#include "common/thread_pool.hpp"

namespace excovery {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace excovery
