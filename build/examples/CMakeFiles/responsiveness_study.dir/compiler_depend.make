# Empty compiler generated dependencies file for responsiveness_study.
# This may be replaced when dependencies are built.
