// Experiment-as-a-service: a long-running in-process front door that
// accepts concurrent campaign submissions and serves memoized results
// (DESIGN.md §14).
//
// Because a conditioned package is a pure function of its campaign digest
// (core::campaign_digest), the service never simulates the same campaign
// twice:
//
//  * an LRU-bounded in-memory package cache answers repeats in
//    microseconds;
//  * an optional content-addressed disk repository (storage::Repository
//    CAS space) answers repeats across service instances and restarts;
//  * single-flight deduplication coalesces concurrent identical
//    submissions — N clients submitting the same campaign trigger exactly
//    one simulation, the other N-1 wait on its result;
//  * misses run on a bounded job queue over common::ThreadPool with
//    admission control: once `max_queue_depth` simulations are admitted
//    and unfinished, further misses are rejected cleanly (kState status)
//    instead of queueing without bound.
//
// Cache hits are answer-invisible: a served package is byte-identical to
// what a fresh simulation would produce, because the digest covers every
// answer-relevant input (and the digest version covers the rest).  All
// cache behaviour is observable through cache.hit / cache.miss /
// cache.singleflight / queue.depth / queue.rejected metrics on the obs
// registry, and through stats() for obs-free builds.
//
// This service API is the staging ground for the roadmap's cross-machine
// daemon: Submission is the wire-protocol payload, the digest is the
// cache key a remote binary cache would be queried with.
#pragma once

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.hpp"
#include "core/canonical.hpp"
#include "core/description.hpp"
#include "obs/obs.hpp"
#include "storage/package.hpp"
#include "storage/repository.hpp"

namespace excovery::core {

/// One campaign submission: the experiment description plus the
/// answer-relevant platform/master scope (both digested) and the
/// answer-invisible execution knobs (not digested).
struct Submission {
  ExperimentDescription description;
  CampaignScope scope;
  /// Worker threads for runs *within* this experiment (MasterOptions::
  /// run_workers).  Answer-invisible (DESIGN.md §10), hence not hashed.
  std::size_t run_workers = 1;

  std::string digest() const {
    return campaign_digest(description, scope);
  }
};

/// How a submission was answered.
enum class SubmitOutcome {
  kMemoryHit,  ///< served from the in-memory LRU cache
  kDiskHit,    ///< served from the content-addressed disk repository
  kCoalesced,  ///< waited on an identical in-flight simulation
  kSimulated,  ///< this submission triggered the simulation
  kRejected,   ///< admission control: queue at max_queue_depth
  kFailed,     ///< the simulation itself failed
};
std::string_view to_string(SubmitOutcome outcome) noexcept;

struct ServiceReply {
  SubmitOutcome outcome = SubmitOutcome::kFailed;
  std::string digest;
  /// The conditioned package; shared because hits alias one cached copy.
  /// Null when outcome is kRejected or kFailed.
  std::shared_ptr<const storage::ExperimentPackage> package;
  /// Error detail for kRejected / kFailed; ok otherwise.
  Status status;
};

/// Monotonic service counters (mirrored into the obs registry when a
/// context is attached; available without one).
struct ServiceStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;       ///< submissions that required simulation
  std::uint64_t coalesced = 0;    ///< waiters deduplicated by single-flight
  std::uint64_t rejected = 0;     ///< refused by admission control
  std::uint64_t simulations = 0;  ///< simulations actually executed
  std::uint64_t failures = 0;     ///< simulations that returned an error
  std::size_t queue_depth = 0;    ///< admitted-but-unfinished simulations
};

class ExperimentService {
 public:
  struct Config {
    /// Simulation worker threads (0 = hardware concurrency).  Distinct
    /// submissions simulate in parallel up to this count.
    std::size_t workers = 0;
    /// Admission control: maximum admitted-but-unfinished simulations
    /// (running + queued).  Submissions missing the cache beyond this
    /// depth are rejected with a kState status.
    std::size_t max_queue_depth = 8;
    /// In-memory package cache entries (LRU eviction).  0 disables the
    /// memory cache (every repeat goes to the disk repository).
    std::size_t memory_cache_capacity = 16;
    /// Content-addressed disk store for results; null = memory only.  The
    /// repository must outlive the service; the service serialises all
    /// access to it (Repository itself is not thread-safe).
    storage::Repository* repository = nullptr;
    /// Metrics sink; null = stats() only.
    obs::ObsContext* obs = nullptr;
    /// Test hook, invoked on the worker thread immediately before a
    /// simulation starts.  Lets tests hold simulations in flight to pin
    /// single-flight and admission-control behaviour deterministically.
    std::function<void(const std::string& digest)> before_simulate;
  };

  explicit ExperimentService(Config config);
  ~ExperimentService() = default;  // the pool drains in-flight simulations

  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  /// Submit and wait for the result.  Safe to call from many threads.
  ServiceReply submit(const Submission& submission);

  /// Submit without waiting.  Rejections and cache hits resolve the
  /// future immediately; misses resolve when the simulation finishes.
  /// Note: unlike submit(), a coalesced waiter's future carries the
  /// initiator's kSimulated outcome (one shared reply for all waiters).
  std::shared_future<ServiceReply> submit_async(const Submission& submission);

  ServiceStats stats() const;
  std::size_t memory_cache_size() const;

 private:
  struct Flight {
    std::promise<ServiceReply> promise;
    std::shared_future<ServiceReply> future;
  };
  using CacheEntry =
      std::pair<std::string, std::shared_ptr<const storage::ExperimentPackage>>;

  /// Returns the future plus whether this call attached to an existing
  /// flight (needed by submit() to report kCoalesced to waiters).
  std::pair<std::shared_future<ServiceReply>, bool> enqueue(
      const Submission& submission);
  void run_flight(const std::string& digest, Submission submission,
                  const std::shared_ptr<Flight>& flight);
  static Result<storage::ExperimentPackage> simulate(
      const Submission& submission);

  // LRU cache; callers hold mutex_.
  std::shared_ptr<const storage::ExperimentPackage> cache_get(
      const std::string& digest);
  void cache_put(const std::string& digest,
                 std::shared_ptr<const storage::ExperimentPackage> package);
  void record_queue_depth();

  Config config_;
  struct {
    obs::MetricId hit, miss, singleflight, rejected, depth;
  } metric_ids_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> lru_index_;
  std::size_t pending_ = 0;  ///< admitted-but-unfinished simulations
  ServiceStats stats_;

  /// Declared last so it is destroyed first: the pool drains outstanding
  /// simulations while the service state above is still alive.
  ThreadPool pool_;
};

}  // namespace excovery::core
