// Responsiveness attribution (DESIGN.md §16): turn a run's causal lineage
// graph into per-discovery *critical paths*.
//
// A discovery is the first sd_service_add event a node records for a given
// service instance.  Walking its lineage parents back to the root yields the
// exact chain that produced it — which query round, which retransmission,
// which cache or SCM hop — with the simulated-time latency of every edge.
// The extraction is a pure function of the (deterministic) lineage graph,
// so the resulting rows are bit-identical across worker counts and obs
// configurations; they are exported into the level-3 Provenance table only
// through the explicit ObsContext::export_provenance call.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/lineage.hpp"
#include "storage/package.hpp"

namespace excovery::obs {

/// One step of a critical path, root first.
struct ProvenanceStep {
  std::string kind;    ///< lineage kind ("root", "query", "deliver", …)
  std::string node;    ///< node the step happened on
  std::string detail;  ///< human-readable site detail (see describe())
  std::int64_t t_ns = 0;        ///< simulated time of the step
  std::int64_t latency_ns = 0;  ///< elapsed since the previous step
};

/// The causal chain behind one discovery.
struct CriticalPath {
  std::string node;      ///< discovering node
  std::string instance;  ///< discovered service instance
  std::int64_t found_ns = 0;  ///< when the discovery event fired
  std::int64_t total_ns = 0;  ///< found - root (attributed latency)
  std::vector<ProvenanceStep> steps;
};

/// Compact one-line description of a lineage event: its label, the peer
/// string when distinct from the node, and the query round when present.
std::string describe(const sim::LineageLog& log,
                     const sim::LineageEvent& event);

/// Extract the critical path of every discovery in the log's retained
/// graph: the *first* sd_service_add per (node, instance), its parent chain
/// walked back to the root.  Returns paths in discovery order; empty when
/// graph retention was off (or EXCOVERY_OBS is off).
std::vector<CriticalPath> extract_critical_paths(const sim::LineageLog& log);

/// Per-run critical-path rows for a whole experiment.  Like the metrics
/// ledger, every entry is attributable to exactly one run, so the
/// collection is a set: identical no matter which worker recorded which
/// run, and exported in (run, path, seq) order.
class ProvenanceLedger {
 public:
  void record_run(std::int64_t run_id,
                  const std::vector<CriticalPath>& paths);
  /// All rows ordered by (run_id, path, seq).
  std::vector<storage::ProvenanceRow> sorted() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<storage::ProvenanceRow> rows_;
};

}  // namespace excovery::obs
