file(REMOVE_RECURSE
  "CMakeFiles/excovery_xml.dir/dom.cpp.o"
  "CMakeFiles/excovery_xml.dir/dom.cpp.o.d"
  "CMakeFiles/excovery_xml.dir/parser.cpp.o"
  "CMakeFiles/excovery_xml.dir/parser.cpp.o.d"
  "CMakeFiles/excovery_xml.dir/schema.cpp.o"
  "CMakeFiles/excovery_xml.dir/schema.cpp.o.d"
  "CMakeFiles/excovery_xml.dir/select.cpp.o"
  "CMakeFiles/excovery_xml.dir/select.cpp.o.d"
  "CMakeFiles/excovery_xml.dir/writer.cpp.o"
  "CMakeFiles/excovery_xml.dir/writer.cpp.o.d"
  "libexcovery_xml.a"
  "libexcovery_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
