file(REMOVE_RECURSE
  "CMakeFiles/test_core_description.dir/core_description_test.cpp.o"
  "CMakeFiles/test_core_description.dir/core_description_test.cpp.o.d"
  "test_core_description"
  "test_core_description.pdb"
  "test_core_description[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_description.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
